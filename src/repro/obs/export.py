"""Exporters: Chrome-trace JSON, trace-schema validation, run manifests.

The Chrome trace event format (the JSON consumed by ``chrome://tracing``
and Perfetto) is the lingua franca for timeline visualization; this
module emits the *object array* flavour: a top-level dict with a
``traceEvents`` list of events.  Two event phases are used:

* ``"X"`` (complete) — a named interval with ``ts`` (start) and ``dur``,
  both in microseconds.  Simulated-pipeline exports map **1 GPU cycle to
  1 microsecond** so Perfetto's time axis reads directly in cycles (the
  convention is recorded in the trace's ``otherData``);
* ``"M"`` (metadata) — ``process_name`` / ``thread_name`` records that
  label the pid/tid lanes (SM pipelines, wave rows, host threads).

:func:`validate_chrome_trace` is the schema gate the tests and the CI
smoke step assert; it accepts exactly what the viewers require and
rejects structurally broken documents with a precise error.

:func:`run_manifest` captures the reproducibility envelope of a run —
interpreter, NumPy, platform, package version, git revision, the
``REPRO_*`` environment, seed/config — and travels inside the trace's
``otherData`` as well as the profile report.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Iterable, Sequence

from .tracing import Span

__all__ = [
    "complete_event",
    "counter_event",
    "process_name_event",
    "thread_name_event",
    "spans_to_events",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "openmetrics_text",
    "parse_openmetrics",
    "run_manifest",
]

#: metadata phases the validator accepts
_META_NAMES = ("process_name", "thread_name", "process_sort_index", "thread_sort_index")


# --- event constructors -----------------------------------------------------
def complete_event(
    name: str,
    ts: float,
    dur: float,
    pid: int = 1,
    tid: int = 1,
    cat: str = "sim",
    args: dict | None = None,
) -> dict:
    """A ``"X"`` (complete) event: one named interval on a pid/tid lane."""
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": float(ts),
        "dur": float(dur),
        "pid": int(pid),
        "tid": int(tid),
    }
    if args:
        event["args"] = args
    return event


def counter_event(
    name: str, ts: float, values: dict, pid: int = 1, cat: str = "sim"
) -> dict:
    """A ``"C"`` (counter) event: sampled series rendered as stacked areas."""
    return {
        "name": name,
        "cat": cat,
        "ph": "C",
        "ts": float(ts),
        "pid": int(pid),
        "args": {k: float(v) for k, v in values.items()},
    }


def process_name_event(pid: int, name: str) -> dict:
    return {"name": "process_name", "ph": "M", "pid": int(pid), "tid": 0,
            "args": {"name": name}}


def thread_name_event(pid: int, tid: int, name: str) -> dict:
    return {"name": "thread_name", "ph": "M", "pid": int(pid), "tid": int(tid),
            "args": {"name": name}}


def spans_to_events(spans: Iterable[Span], pid: int = 100) -> list[dict]:
    """Runtime (wall-clock) spans as complete events, one tid per thread.

    Timestamps are rebased to the earliest span start and expressed in
    microseconds, the unit the viewers expect.
    """
    spans = list(spans)
    if not spans:
        return []
    t0 = min(s.start_ns for s in spans)
    threads: dict[int, int] = {}
    events: list[dict] = [process_name_event(pid, "host (wall clock)")]
    for span in spans:
        tid = threads.get(span.thread_id)
        if tid is None:
            tid = threads[span.thread_id] = len(threads) + 1
            events.append(thread_name_event(pid, tid, span.thread_name or f"thread-{tid}"))
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update({k: v for k, v in span.attributes.items()
                     if isinstance(v, (str, int, float, bool))})
        events.append(
            complete_event(
                span.name,
                ts=(span.start_ns - t0) / 1000.0,
                dur=span.duration_ns / 1000.0,
                pid=pid,
                tid=tid,
                cat=span.category or "runtime",
                args=args,
            )
        )
    return events


# --- document assembly ------------------------------------------------------
def chrome_trace(events: Sequence[dict], manifest: dict | None = None) -> dict:
    """Assemble the object-array Chrome trace document."""
    doc = {
        "traceEvents": list(events),
        "displayTimeUnit": "ns",
        "otherData": {
            "format": "repro.obs chrome-trace",
            "time_unit": "1 us == 1 simulated GPU cycle (sim lanes); "
                         "wall-clock us (host lanes)",
        },
    }
    if manifest is not None:
        doc["otherData"]["manifest"] = manifest
    return doc


def validate_chrome_trace(doc: dict) -> int:
    """Schema-check a Chrome trace document; returns the event count.

    Enforces what ``chrome://tracing`` / Perfetto actually need to load
    the file: a ``traceEvents`` list whose ``"X"`` events carry numeric
    non-negative ``ts``/``dur`` and integer ``pid``/``tid``, and whose
    metadata events name a known metadata record.  Raises
    :class:`ValueError` with the index of the first offending event.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace document must contain a 'traceEvents' list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i}: not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"event {i}: missing phase 'ph'")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"event {i}: missing string 'name'")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                    raise ValueError(f"event {i}: 'X' event needs numeric non-negative {key!r}")
            for key in ("pid", "tid"):
                if not isinstance(event.get(key), int):
                    raise ValueError(f"event {i}: 'X' event needs integer {key!r}")
        elif ph == "M":
            if event.get("name") not in _META_NAMES:
                raise ValueError(f"event {i}: unknown metadata record {event.get('name')!r}")
            if not isinstance(event.get("args"), dict):
                raise ValueError(f"event {i}: metadata event needs an 'args' object")
        elif ph == "C":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
                raise ValueError(f"event {i}: 'C' event needs numeric non-negative 'ts'")
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"event {i}: 'C' event needs a non-empty 'args' object")
            for key, value in args.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(
                        f"event {i}: 'C' counter series {key!r} must be numeric"
                    )
        # other phases (B/E/i/...) are legal in the format; we don't emit
        # them, but a trace merging external events must still validate.
    return len(events)


def write_chrome_trace(
    path: str | Path, events: Sequence[dict], manifest: dict | None = None
) -> Path:
    """Validate and write a Chrome trace document; returns the path."""
    doc = chrome_trace(events, manifest=manifest)
    validate_chrome_trace(doc)
    path = Path(path)
    path.write_text(json.dumps(doc, indent=1, default=float))
    return path


# --- OpenMetrics / Prometheus text export -----------------------------------
def _openmetrics_name(name: str) -> str:
    """Sanitize a dotted registry name into the OpenMetrics charset."""
    out = "".join(ch if (ch.isascii() and (ch.isalnum() or ch in "_:")) else "_"
                  for ch in name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _openmetrics_escape(value) -> str:
    """Escape a label value per the OpenMetrics text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _bucket_le(bucket: str) -> float:
    """Numeric upper edge of one power-of-two histogram bucket label."""
    if bucket == "<=0":
        return 0.0
    return float(2.0 ** int(bucket.removeprefix("<=2^")))


def _format_value(value: float) -> str:
    """Render a sample value: integers bare, floats via repr (lossless)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _flatten_numeric(prefix: str, node, out: list[tuple[str, float]]) -> None:
    for key, value in sorted(node.items()) if isinstance(node, dict) else ():
        name = f"{prefix}.{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out.append((name, value))
        elif isinstance(value, dict):
            _flatten_numeric(name, value, out)


def openmetrics_text(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as OpenMetrics text.

    The Prometheus exposition dialect every scraper ingests: counters
    become ``name_total`` samples, gauges plain samples, histograms
    cumulative ``name_bucket{le="..."}`` series (the registry's
    power-of-two magnitude buckets provide the edges) plus ``_count`` /
    ``_sum``, and provider stats flatten into gauges on their dotted
    paths.  Dotted registry names sanitize to underscores.  A histogram
    exemplar (see :class:`repro.obs.metrics.Histogram`) rides on the
    ``+Inf`` bucket in the official ``# {labels} value`` exemplar
    syntax.  Output terminates with ``# EOF`` per the OpenMetrics spec,
    and :func:`parse_openmetrics` round-trips it.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        base = _openmetrics_name(name)
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base}_total {_format_value(value)}")
    gauges = list(snapshot.get("gauges", {}).items())
    provided: list[tuple[str, float]] = []
    for pname, stats in snapshot.get("providers", {}).items():
        _flatten_numeric(pname, stats, provided)
    for name, value in (*gauges, *provided):
        base = _openmetrics_name(name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_format_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        base = _openmetrics_name(name)
        lines.append(f"# TYPE {base} histogram")
        cumulative = 0
        for bucket in sorted(hist.get("buckets", {}), key=_bucket_le):
            cumulative += hist["buckets"][bucket]
            le = _format_value(_bucket_le(bucket))
            lines.append(f'{base}_bucket{{le="{le}"}} {cumulative}')
        exemplar = hist.get("exemplar")
        suffix = ""
        if exemplar:
            labels = ",".join(
                f'{_openmetrics_name(str(k))}="{_openmetrics_escape(v)}"'
                for k, v in sorted(exemplar.get("labels", {}).items())
            )
            suffix = f" # {{{labels}}} {_format_value(exemplar['value'])}"
        lines.append(f'{base}_bucket{{le="+Inf"}} {hist.get("count", 0)}{suffix}')
        lines.append(f"{base}_count {hist.get('count', 0)}")
        lines.append(f"{base}_sum {_format_value(hist.get('sum', 0.0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_labels(raw: str) -> dict:
    labels: dict[str, str] = {}
    for part in filter(None, (p.strip() for p in raw.split(","))):
        key, _, value = part.partition("=")
        value = value.strip().strip('"')
        labels[key.strip()] = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
    return labels


def _le_bucket(le: float) -> str:
    """Inverse of :func:`_bucket_le`: numeric edge back to the label."""
    if le <= 0:
        return "<=0"
    return f"<=2^{round(math.log2(le))}"


def parse_openmetrics(text: str) -> dict:
    """Parse OpenMetrics text back into a registry-snapshot-shaped dict.

    The inverse of :func:`openmetrics_text` over what the text format
    can carry: counters, gauges (including flattened provider stats —
    indistinguishable from plain gauges once exported), and histograms
    with their non-cumulative power-of-two buckets, count, sum, and
    exemplar.  Histogram min/max/mean/quantiles do not survive the
    format and are not reconstructed.
    """
    snapshot: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    types: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        sample, _, exemplar_raw = line.partition(" # ")
        if "{" in sample:
            name, rest = sample.split("{", 1)
            labels_raw, _, value_raw = rest.rpartition("}")
            labels = _parse_labels(labels_raw)
        else:
            name, _, value_raw = sample.partition(" ")
            labels = {}
        value = float(value_raw.strip().split()[0])
        for base, kind in types.items():
            if kind == "histogram" and name in (
                f"{base}_bucket", f"{base}_count", f"{base}_sum"
            ):
                hist = snapshot["histograms"].setdefault(
                    base, {"count": 0, "sum": 0.0, "buckets": {}}
                )
                if name.endswith("_count"):
                    hist["count"] = int(value)
                elif name.endswith("_sum"):
                    hist["sum"] = value
                else:
                    le = labels.get("le", "+Inf")
                    if le != "+Inf":
                        hist.setdefault("_cumulative", []).append(
                            (float(le), int(value))
                        )
                    if exemplar_raw:
                        ex_labels, _, ex_value = exemplar_raw.strip().partition("} ")
                        hist["exemplar"] = {
                            "value": float(ex_value.split()[0]),
                            "labels": _parse_labels(ex_labels.lstrip("{")),
                        }
                break
            if kind == "counter" and name == f"{base}_total":
                raw = snapshot["counters"]
                raw[base] = int(value) if value.is_integer() else value
                break
            if kind == "gauge" and name == base:
                snapshot["gauges"][base] = value
                break
    for hist in snapshot["histograms"].values():
        cumulative = sorted(hist.pop("_cumulative", []))
        buckets: dict[str, int] = {}
        prev = 0
        for le, count in cumulative:
            if count > prev:
                buckets[_le_bucket(le)] = count - prev
            prev = count
        hist["buckets"] = buckets
    return snapshot


# --- reproducibility manifest -----------------------------------------------
def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_manifest(seed: int | None = None, config: dict | None = None) -> dict:
    """The reproducibility envelope of one run.

    Everything needed to re-run the experiment and expect identical
    output: interpreter and NumPy versions, platform, package version,
    git revision (when the checkout is available), the ``REPRO_*``
    environment knobs, and the caller's seed/config.
    """
    import numpy

    from .. import __version__

    manifest = {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "repro_version": __version__,
        "git_revision": _git_revision(),
        "env": {k: v for k, v in sorted(os.environ.items()) if k.startswith("REPRO_")},
        "argv": list(sys.argv),
    }
    if seed is not None:
        manifest["seed"] = seed
    if config is not None:
        manifest["config"] = config
    return manifest
