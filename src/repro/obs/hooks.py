"""Context-local overrides for the simulator's single-slot hooks.

The fault-injection hooks (``FAULT_HOOK`` in :mod:`repro.emulation.gemm`,
:mod:`repro.tensorcore.mma`, :mod:`repro.tensorcore.fragment`,
:mod:`repro.gpu.memory`) and the execution observer (``EXEC_HOOK`` in
:mod:`repro.gpu.engine`) started life as module globals — one slot per
process.  That is fine for a fault campaign that owns the whole process,
but a *serving* process runs many instrumented requests concurrently:
two in-flight requests installing collectors through the module global
would clobber each other's hooks and interleave each other's events.

This module adds a second, **context-local** tier on top of the module
globals, built on :mod:`contextvars`:

* each hot path resolves its hook as ``context-local override, else the
  module global`` (:func:`fault_hook_override` /
  :func:`exec_hook_override` — one ``ContextVar.get`` on the hot path,
  ~the cost of the existing ``is None`` check);
* :func:`local_fault_hook` / :func:`local_exec_hook` install a hook for
  the current context only.  A new thread starts with an empty context,
  so a hook installed inside one serving worker is invisible to every
  other worker — two in-flight requests can collect concurrently without
  coordination.

The module-global tier keeps its exact old semantics (campaigns, the
profiler CLI, and existing tests are unchanged); context installation is
opt-in via ``FaultInjector.installed(scope="context")`` and
``collect_executions(scope="context")``.

stdlib-only, like the rest of the observability spine, so the lowest
simulator layers import it freely.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

__all__ = [
    "FAULT_HOOK_VAR",
    "EXEC_HOOK_VAR",
    "fault_hook_override",
    "exec_hook_override",
    "local_fault_hook",
    "local_exec_hook",
]

#: context-local fault hook; ``None`` means "defer to the module global"
FAULT_HOOK_VAR: ContextVar[Callable | None] = ContextVar("repro_fault_hook", default=None)

#: context-local execution observer; ``None`` defers to the module global
EXEC_HOOK_VAR: ContextVar[Callable | None] = ContextVar("repro_exec_hook", default=None)


def fault_hook_override(module_hook: Callable | None) -> Callable | None:
    """The effective fault hook: the context-local one, else ``module_hook``.

    Hot-path helper — callers pass their own module-global slot so the
    precedence (context wins) lives in exactly one place.
    """
    override = FAULT_HOOK_VAR.get()
    return module_hook if override is None else override


def exec_hook_override(module_hook: Callable | None) -> Callable | None:
    """The effective execution observer (context-local wins)."""
    override = EXEC_HOOK_VAR.get()
    return module_hook if override is None else override


@contextmanager
def local_fault_hook(hook: Callable) -> Iterator[Callable]:
    """Install ``hook`` as the fault hook for the current context only.

    Restores the previous context value on exit (even on error), so
    nested installations unwind correctly and a hook can never leak past
    its ``with`` block.
    """
    token = FAULT_HOOK_VAR.set(hook)
    try:
        yield hook
    finally:
        FAULT_HOOK_VAR.reset(token)


@contextmanager
def local_exec_hook(hook: Callable) -> Iterator[Callable]:
    """Install ``hook`` as the execution observer for the current context."""
    token = EXEC_HOOK_VAR.set(hook)
    try:
        yield hook
    finally:
        EXEC_HOOK_VAR.reset(token)
