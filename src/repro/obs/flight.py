"""Flight recorder: a bounded, replayable event log for the serving layer.

Aircraft keep a flight recorder precisely because the interesting
failures happen in production, under load, and are gone by the time
anyone is watching.  The serving layer gets the same facility: a
**bounded ring buffer** of structured events — admissions, routing
decisions, batch formation, dispatches, executions, expiries,
rejections, SLO-burn alerts, injected faults — that costs one locked
append per event and never grows without bound.

Design constraints:

* **deterministic** — events carry only *virtual* timestamps, sequence
  numbers, and ids; a seeded load test therefore dumps a byte-identical
  log on every run, and tests assert byte-stable replay;
* **bounded** — a ``collections.deque(maxlen=capacity)`` ring: when the
  buffer fills, the oldest events fall off and ``dropped`` counts them
  (a production recorder must never OOM the process it is observing);
* **self-describing** — the JSONL dump opens with a header record
  naming the schema (and optionally the run manifest), and
  :func:`validate_flight_log` is the contract CI holds the artifact to;
* **reconstructable** — :func:`reconstruct_lifecycle` rebuilds any
  request's full admission→route→batch→execute→terminal story from a
  dumped log, which is what ``python -m repro postmortem <request-id>``
  prints.

stdlib-only, like the rest of the observability spine.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from pathlib import Path
from typing import Iterable

__all__ = [
    "FLIGHT_SCHEMA",
    "EVENT_KINDS",
    "FlightRecorder",
    "load_flight_log",
    "validate_flight_log",
    "reconstruct_lifecycle",
    "format_lifecycle",
    "main",
]

#: flight-log schema identifier, bumped on breaking record changes
FLIGHT_SCHEMA = "repro.obs.flight/1"

#: event vocabulary -> required fields (beyond ``seq``/``t``/``kind``)
EVENT_KINDS: dict[str, tuple[str, ...]] = {
    "header": ("schema",),
    "admit": ("request_id", "shape", "max_rel_error", "priority", "reliable"),
    "route": ("request_id", "kernel", "error_bound", "seconds", "rejected_cheaper"),
    "reject": ("request_id", "reason"),
    "batch_form": ("batch_id", "kernel", "size", "request_ids", "created_at"),
    "dispatch": ("batch_id", "device"),
    "backpressure": ("batch_id", "size"),
    "exec": ("batch_id", "device", "start", "end", "service_s", "size"),
    "expire": ("request_id",),
    "complete": ("request_id", "batch_id", "device", "kernel", "latency_s"),
    "fault": ("site", "span_id", "bit"),
    "alert": ("monitor", "window_long_s", "window_short_s", "burn_long", "burn_short"),
    # fleet chaos + recovery vocabulary (repro.serve.chaos / .recovery)
    "chaos": ("site", "fault_kind"),
    "retry": ("batch_id", "attempt", "delay_s", "reason"),
    "hedge": ("batch_id", "device"),
    "requeue": ("batch_id", "device"),
    "degrade": ("request_id", "kernel", "error_bound", "fallback_slo"),
    "failed": ("request_id", "reason"),
    # accuracy-observability vocabulary (repro.obs.accuracy): shadow
    # verification against float64 ground truth.  ``bound_violation`` is
    # the page-worthy event — a certified analytic bound was exceeded by
    # a served result; ``accuracy_exemplar`` snapshots the worst-residual
    # request per kernel so the postmortem CLI can reconstruct it.
    "bound_violation": ("request_id", "kernel", "observed", "certified"),
    "accuracy_exemplar": ("request_id", "kernel", "observed", "certified", "ratio"),
    # latency-attribution vocabulary (repro.obs.latency): the exact
    # per-component decomposition of a worst-p99 exemplar request's
    # end-to-end virtual latency, appended by ``python -m repro latency``
    "latency_breakdown": ("request_id", "components", "latency_s"),
}


class FlightRecorder:
    """Bounded ring buffer of structured serving events.

    Thread-safe: serving observers may record from hook callbacks on any
    thread.  ``capacity`` bounds memory; once exceeded, the *oldest*
    events are discarded and counted in :attr:`dropped` — a postmortem
    on a long-running service sees the most recent window, which is the
    one that matters.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be at least 1")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, kind: str, t: float, **fields) -> dict:
        """Append one event; returns the stored record."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown flight event kind {kind!r}")
        event = {"seq": next(self._seq), "t": float(t), "kind": kind, **fields}
        with self._lock:
            self._events.append(event)
            self.recorded += 1
        return event

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound (recorded - retained)."""
        with self._lock:
            return self.recorded - len(self._events)

    def events(self, kind: str | None = None) -> list[dict]:
        """Snapshot of retained events, oldest first (optionally filtered)."""
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e["kind"] == kind]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- serialization ---------------------------------------------------
    def dump_jsonl(self, path: str | Path, manifest: dict | None = None) -> Path:
        """Write the header + retained events as JSON Lines.

        The header carries the schema, capacity, and drop accounting;
        ``manifest`` (a :func:`repro.obs.export.run_manifest`) is
        embedded when given.  Events are dumped with sorted keys so a
        seeded run's log is byte-identical across replays.
        """
        path = Path(path)
        with self._lock:
            events = list(self._events)
            header: dict = {
                "seq": -1,
                "t": 0.0,
                "kind": "header",
                "schema": FLIGHT_SCHEMA,
                "capacity": self.capacity,
                "recorded": self.recorded,
                "dropped": self.recorded - len(events),
            }
        if manifest is not None:
            header["manifest"] = manifest
        with open(path, "w") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for event in events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return path


def load_flight_log(path: str | Path) -> list[dict]:
    """Parse a JSONL flight log (header first, then events)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_flight_log(records: Iterable[dict]) -> list[str]:
    """Schema-check a parsed flight log; returns a list of problems.

    CI fails the serving smoke step on any returned string.  Checks the
    header (schema identity), the event vocabulary, per-kind required
    fields, and monotonically increasing sequence numbers — the
    properties :func:`reconstruct_lifecycle` relies on.
    """
    problems: list[str] = []
    records = list(records)
    if not records:
        return ["empty flight log"]
    header = records[0]
    if header.get("kind") != "header":
        problems.append("first record must be the header")
    elif header.get("schema") != FLIGHT_SCHEMA:
        problems.append(
            f"schema is {header.get('schema')!r}, expected {FLIGHT_SCHEMA!r}"
        )
    last_seq = None
    for i, event in enumerate(records[1:], start=1):
        kind = event.get("kind")
        if kind not in EVENT_KINDS or kind == "header":
            problems.append(f"record {i}: unknown kind {kind!r}")
            continue
        t = event.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            problems.append(f"record {i}: 't' must be a non-negative number")
        seq = event.get("seq")
        if not isinstance(seq, int):
            problems.append(f"record {i}: missing integer 'seq'")
        elif last_seq is not None and seq <= last_seq:
            problems.append(f"record {i}: seq {seq} not increasing (after {last_seq})")
        else:
            last_seq = seq
        for field in EVENT_KINDS[kind]:
            if field not in event:
                problems.append(f"record {i}: {kind!r} event missing {field!r}")
    return problems


# -- postmortem reconstruction -------------------------------------------
def reconstruct_lifecycle(records: Iterable[dict], request_id: int) -> dict:
    """Rebuild one request's full lifecycle from a flight log.

    Collects the request's own events (admit/route/reject/expire/
    complete), finds the batch that carried it, and folds in that
    batch's formation/dispatch/execution events — the complete
    admission→route→batch→execute→terminal chain.  Deterministic:
    events are returned in sequence order, so two seeded runs
    reconstruct identical lifecycles.
    """
    batch_id = None
    own: list[dict] = []
    for event in records:
        kind = event.get("kind")
        if kind == "header":
            continue
        if event.get("request_id") == request_id:
            own.append(event)
            if event.get("batch_id") is not None:
                batch_id = event["batch_id"]
        elif kind == "batch_form" and request_id in event.get("request_ids", ()):
            batch_id = event["batch_id"]
            own.append(event)
        elif (
            kind in ("dispatch", "backpressure", "exec", "retry", "hedge", "requeue")
            and batch_id is not None
            and event.get("batch_id") == batch_id
        ):
            own.append(event)
    own.sort(key=lambda e: e["seq"])
    status = None
    for event in own:
        if event["kind"] in ("complete", "reject", "expire", "failed"):
            status = {"complete": "completed", "reject": "rejected",
                      "expire": "expired", "failed": "failed"}[event["kind"]]
    return {
        "request_id": request_id,
        "batch_id": batch_id,
        "status": status,
        "events": own,
    }


def format_lifecycle(lifecycle: dict) -> str:
    """Human-readable, byte-deterministic rendering of a lifecycle."""
    lines = [
        f"request {lifecycle['request_id']}: "
        f"status={lifecycle['status'] or 'unknown'} "
        f"batch={lifecycle['batch_id'] if lifecycle['batch_id'] is not None else '-'}"
    ]
    for event in lifecycle["events"]:
        detail = {
            k: v
            for k, v in sorted(event.items())
            if k not in ("seq", "t", "kind")
        }
        rendered = " ".join(
            f"{k}={json.dumps(v, sort_keys=True)}" for k, v in detail.items()
        )
        lines.append(f"  [{event['t'] * 1e6:12.3f} us] {event['kind']:<12s} {rendered}")
    if not lifecycle["events"]:
        lines.append("  (no events — request id not present in this log)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro postmortem <request-id> [--log PATH]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro postmortem",
        description="reconstruct one request's lifecycle from a flight-recorder log",
    )
    parser.add_argument("request_id", type=int, help="request id to reconstruct")
    parser.add_argument("--log", default="FLIGHT_serve.jsonl",
                        help="flight-recorder JSONL dump (from python -m repro serve)")
    args = parser.parse_args(argv)

    try:
        records = load_flight_log(args.log)
    except FileNotFoundError:
        print(f"no flight log at {args.log} — run python -m repro serve "
              f"--flight-log {args.log} first")
        return 2
    problems = validate_flight_log(records)
    if problems:
        for problem in problems:
            print(f"SCHEMA PROBLEM: {problem}")
        return 1
    lifecycle = reconstruct_lifecycle(records, args.request_id)
    print(format_lifecycle(lifecycle))
    if lifecycle["events"]:
        from .latency import breakdown_from_flight, format_breakdown

        breakdown = breakdown_from_flight(records, args.request_id)
        if breakdown is not None:
            print()
            print(format_breakdown(args.request_id, *breakdown))
    return 0 if lifecycle["events"] else 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
