"""Metrics registry: counters, gauges, histograms, and stat providers.

One queryable namespace for the quantitative state that used to live in
ad-hoc per-subsystem accumulators — ``GemmStats`` aggregates,
``MmaCounter`` totals, the scheduler's memo counters, ``SplitCache``
hit/miss statistics, fault-injector event counts.  Three primitive
metric kinds, all thread-safe:

* :class:`Counter`   — monotonically increasing totals (``inc``);
* :class:`Gauge`     — last-value-wins instantaneous readings (``set``);
* :class:`Histogram` — streaming distribution summary (count / sum /
  min / max plus power-of-two magnitude buckets).

Subsystems that already maintain their own counters (the schedule memo,
split caches) plug in as **providers**: a zero-argument callable
returning a stats dict, evaluated lazily at :meth:`MetricsRegistry
.snapshot` time, so the registry unifies existing state without
duplicating it.

The snapshot/reset protocol is the concurrency contract: ``snapshot()``
reads every metric under the registry lock (no torn counters across a
concurrent ``parallel_map`` sweep), and ``reset()`` zeroes them under
the same lock.  Dotted metric names (``emulation.gemm.mma_calls``)
namespace the owners; :meth:`MetricsRegistry.query` filters by prefix.

``REPRO_METRICS=0`` disables collection: the hot-path helpers
(:meth:`inc`, :meth:`observe`, :meth:`set_gauge`) become single-check
no-ops.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "main",
]


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge for ups and downs")
        with self._lock:
            self.value += amount

    def snapshot(self) -> int | float:
        with self._lock:
            return self.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """An instantaneous reading (last value wins)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def snapshot(self) -> float:
        with self._lock:
            return self.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Histogram:
    """Streaming distribution summary with power-of-two magnitude buckets.

    Buckets count observations by ``ceil(log2(value))`` (values <= 0 land
    in the ``"<=0"`` bucket) — enough resolution to see the shape of
    latencies and sizes without configuring bucket boundaries.

    The first ``sample_limit`` observations are additionally stored
    verbatim, so :meth:`quantile` can interpolate **exact** percentiles
    from the raw samples instead of bucket midpoints — the serving-layer
    latency summary depends on this.  Past the limit the stream summary
    (count/sum/min/max/buckets) keeps updating but no further samples
    are retained; ``snapshot()["samples_truncated"]`` records the fact.

    With ``track_exemplars=True`` the histogram additionally retains one
    **exemplar** — the labels (trace/span id, request id, kernel, ...)
    attached to the observation that set a new maximum — so the worst
    value in a distribution stays attributable to the event that caused
    it.  The accuracy layer's bound-tightness histograms use this to
    point straight at the worst-residual request.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "samples",
                 "sample_limit", "track_exemplars", "exemplar", "_lock")

    #: default cap on retained raw samples (exact-quantile window)
    DEFAULT_SAMPLE_LIMIT = 65536

    def __init__(
        self, sample_limit: int | None = None, track_exemplars: bool = False
    ) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[str, int] = {}
        self.samples: list[float] = []
        self.sample_limit = (
            self.DEFAULT_SAMPLE_LIMIT if sample_limit is None else max(0, sample_limit)
        )
        self.track_exemplars = track_exemplars
        self.exemplar: dict | None = None
        self._lock = threading.Lock()

    @staticmethod
    def _bucket(value: float) -> str:
        if value <= 0:
            return "<=0"
        return f"<=2^{max(0, math.ceil(math.log2(value)))}"

    def observe(self, value: float, exemplar: dict | None = None) -> None:
        bucket = self._bucket(value)
        with self._lock:
            if self.track_exemplars and value > self.max:
                self.exemplar = {
                    "value": float(value),
                    "labels": dict(exemplar) if exemplar else {},
                }
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
            if len(self.samples) < self.sample_limit:
                self.samples.append(float(value))

    def quantile(self, q: float) -> float | None:
        """Exact ``q``-quantile of the stored samples, linearly interpolated.

        Uses the same linear-interpolation definition as
        ``numpy.percentile`` (``method="linear"``): the quantile sits at
        fractional rank ``q * (n - 1)`` of the sorted samples.  Edge
        cases: no samples returns ``None``; one sample returns that
        sample for every ``q``; two samples interpolate between them.
        Only the retained samples (the first ``sample_limit``
        observations) participate — exact whenever the stream fit.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            samples = sorted(self.samples)
        if not samples:
            return None
        if len(samples) == 1:
            return samples[0]
        rank = q * (len(samples) - 1)
        lo = math.floor(rank)
        hi = min(lo + 1, len(samples) - 1)
        frac = rank - lo
        return samples[lo] + (samples[hi] - samples[lo]) * frac

    def quantiles(self, qs: Iterable[float]) -> dict[float, float | None]:
        """Batch :meth:`quantile` lookup over one sorted copy."""
        return {q: self.quantile(q) for q in qs}

    def snapshot(self) -> dict:
        with self._lock:
            if not self.count:
                out = {"count": 0, "sum": 0.0, "min": None, "max": None,
                       "mean": None, "buckets": {}, "samples_truncated": False}
            else:
                out = {
                    "count": self.count,
                    "sum": self.total,
                    "min": self.min,
                    "max": self.max,
                    "mean": self.total / self.count,
                    "buckets": dict(self.buckets),
                    "samples_truncated": self.count > len(self.samples),
                }
            if self.track_exemplars:
                out["exemplar"] = dict(self.exemplar) if self.exemplar else None
            return out

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = math.inf
            self.max = -math.inf
            self.buckets = {}
            self.samples = []
            self.exemplar = None


class MetricsRegistry:
    """Named metrics plus lazily evaluated stat providers, one namespace."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: dict[str, Callable[[], dict]] = {}
        #: durable providers re-installed by :meth:`reset` — the lazy
        #: subsystem providers (serving totals, cache stats) register
        #: here so a mid-run reset can never drop them from snapshots
        self._durable_providers: dict[str, Callable[[], dict]] = {}

    # --- metric factories (create on first use) -----------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    # --- hot-path helpers (single-check no-ops when disabled) ---------------
    def inc(self, name: str, amount: int | float = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float, exemplar: dict | None = None) -> None:
        if self.enabled:
            self.histogram(name).observe(value, exemplar)

    # --- providers ----------------------------------------------------------
    def register_provider(
        self, name: str, provider: Callable[[], dict], durable: bool = True
    ) -> None:
        """Attach an external stats source, evaluated at snapshot time.

        Re-registering a name replaces the provider (module reloads and
        tests would otherwise accumulate stale callables).  ``durable``
        (the default — every subsystem provider wants this) additionally
        records the provider so :meth:`reset` re-installs it: a reset
        mid-run used to silently drop the serving and cache-stats
        providers from every subsequent snapshot when something had
        unregistered them in between.
        """
        with self._lock:
            self._providers[name] = provider
            if durable:
                self._durable_providers[name] = provider

    def unregister_provider(self, name: str, durable: bool = False) -> None:
        """Detach a provider; ``durable=True`` also forgets the default.

        Plain unregistration is temporary by design — the next
        :meth:`reset` restores a durable provider.
        """
        with self._lock:
            self._providers.pop(name, None)
            if durable:
                self._durable_providers.pop(name, None)

    # --- snapshot / reset protocol ------------------------------------------
    def snapshot(self, include_providers: bool = True) -> dict:
        """Consistent point-in-time view of every metric.

        Held under the registry lock so a concurrent sweep can never
        interleave a half-updated set of counters into the snapshot.
        Provider callables run *outside* the lock (they take their own
        subsystem locks and must not deadlock against ours).
        """
        with self._lock:
            out = {
                "counters": {k: c.snapshot() for k, c in sorted(self._counters.items())},
                "gauges": {k: g.snapshot() for k, g in sorted(self._gauges.items())},
                "histograms": {k: h.snapshot() for k, h in sorted(self._histograms.items())},
            }
            providers = dict(self._providers)
        if include_providers:
            provided = {}
            for name, fn in sorted(providers.items()):
                try:
                    provided[name] = fn()
                except Exception as exc:  # a broken provider must not kill a report
                    provided[name] = {"error": f"{type(exc).__name__}: {exc}"}
            out["providers"] = provided
        return out

    def reset(self) -> None:
        """Zero every owned metric (providers own their own reset).

        Durable providers that were unregistered since their
        registration are re-installed, so the registry's provider set
        after a reset always includes every subsystem default.
        """
        with self._lock:
            for metric in (*self._counters.values(), *self._gauges.values(),
                           *self._histograms.values()):
                metric.reset()
            for name, provider in self._durable_providers.items():
                self._providers.setdefault(name, provider)

    def query(self, prefix: str) -> dict:
        """Flat {name: value} view of counters/gauges under a dotted prefix."""
        snap = self.snapshot(include_providers=False)
        flat: dict[str, float] = {}
        flat.update(snap["counters"])
        flat.update(snap["gauges"])
        return {k: v for k, v in flat.items() if k == prefix or k.startswith(prefix + ".")}


#: the process-wide registry; ``REPRO_METRICS=0`` disables collection
REGISTRY = MetricsRegistry(enabled=_env_flag("REPRO_METRICS"))


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return REGISTRY


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro metrics [SNAPSHOT.json]``.

    Renders a :class:`MetricsRegistry` snapshot as OpenMetrics/Prometheus
    text (:func:`repro.obs.export.openmetrics_text`).  ``SNAPSHOT.json``
    may be a bare ``MetricsRegistry.snapshot()`` dump or any report that
    embeds one under a ``"metrics"`` key (``ACCURACY_report.json``
    does); without an argument the live process registry is dumped.
    """
    import argparse
    import json
    import sys

    from .export import openmetrics_text

    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="dump a MetricsRegistry snapshot in OpenMetrics text format",
    )
    parser.add_argument(
        "snapshot", nargs="?", default=None,
        help="JSON file holding a registry snapshot, or a report embedding "
             "one under a 'metrics' key; default: this process's registry",
    )
    args = parser.parse_args(argv)

    if args.snapshot is None:
        snap = get_registry().snapshot()
    else:
        try:
            with open(args.snapshot) as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            print(f"no snapshot file at {args.snapshot}", file=sys.stderr)
            return 2
        snap = doc if "counters" in doc else doc.get("metrics")
        if not isinstance(snap, dict) or "counters" not in snap:
            print(
                f"{args.snapshot} holds neither a registry snapshot nor a "
                f"report with a 'metrics' section", file=sys.stderr,
            )
            return 2
    sys.stdout.write(openmetrics_text(snap))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
