"""Truncate-split: the data split of Markidis et al. [20] (Figure 4a).

The single-precision mantissa is *chopped* into two back-to-back 10-bit
fields: ``xhi`` keeps the leading 10 bits (round toward zero) and ``xlo``
keeps the next 10, also by chopping — Figure 4a draws exactly these two
"10-bit mantissa" boxes.  Because chopping never rounds up, the residual
of a positive value is always non-negative, so the sign bit of ``xlo`` is
wasted and the truncation of the low field discards everything beyond bit
20 outright — the reconstructed value carries only 20 effective mantissa
bits ("Markidis-precision" in Table 1) and a one-sided error the
round-split avoids.
"""

from __future__ import annotations

import numpy as np

from ..fp.rounding import truncate_to_mantissa
from .base import Split, SplitPair

__all__ = ["TruncateSplit", "truncate_split"]


class TruncateSplit(Split):
    """Markidis truncate-based two-term split (1-bit precision loss)."""

    name = "truncate"
    effective_mantissa_bits = 20

    def split(self, x: np.ndarray) -> SplitPair:
        x32 = np.asarray(x, dtype=np.float32).astype(np.float64)
        # Chop to the half-precision mantissa width.  The chopped value has
        # at most 11 significand bits and (for in-range inputs) converts to
        # float16 exactly; the conversion itself cannot round.
        hi = truncate_to_mantissa(x32, 10).astype(np.float16)
        # The low field is chopped as well (Figure 4a): bits beyond the
        # 20th are discarded, never rounded up.
        residual = x32 - hi.astype(np.float64)
        lo = truncate_to_mantissa(residual, 10).astype(np.float16)
        return SplitPair(hi=hi, lo=lo)


def truncate_split(x: np.ndarray) -> SplitPair:
    """Functional convenience wrapper around :class:`TruncateSplit`."""
    return TruncateSplit().split(x)
