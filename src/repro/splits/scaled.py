"""Scaled truncate-split — the form Markidis et al.'s code actually uses.

The IPDPSW'18 implementation stores the low term *scaled by 2^11*
(``lo_s = (half)((x - hi) * 2048)``) so the residual sits comfortably in
fp16's normal range instead of brushing its subnormals.  The price is
structural: the low-term partial products come out scaled by 2^11 (cross
terms) or 2^22 (lo*lo), so they cannot be accumulated by the Tensor
Core's plain ``D = A x B + C`` primitive — each scaled product needs its
own accumulator and a CUDA-core rescale-and-add pass.

This module provides the split and a reference emulation that performs
the rescale combination explicitly, quantifying the trade-off the paper
implicitly makes by choosing the *unscaled* round-split (4 fused calls,
no rescale pass, slightly larger residual near the subnormal boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fp.rounding import truncate_to_mantissa
from .base import Split, SplitPair

__all__ = ["ScaledTruncateSplit", "SCALE_BITS", "scaled_emulated_gemm"]

#: the 2^11 scale of the low term (one half-precision mantissa width + 1)
SCALE_BITS = 11


@dataclass(frozen=True)
class _ScaledPair:
    """hi (unscaled) and lo (scaled by 2^SCALE_BITS) half matrices."""

    hi: np.ndarray
    lo_scaled: np.ndarray

    def reconstruct(self) -> np.ndarray:
        return self.hi.astype(np.float64) + self.lo_scaled.astype(np.float64) * 2.0**-SCALE_BITS


class ScaledTruncateSplit(Split):
    """Markidis's published split: chopped high term, 2^11-scaled low."""

    name = "scaled-truncate"
    effective_mantissa_bits = 21  # the scale recovers the subnormal losses

    def split_scaled(self, x: np.ndarray) -> _ScaledPair:
        x64 = np.asarray(x, dtype=np.float32).astype(np.float64)
        hi = truncate_to_mantissa(x64, 10).astype(np.float16)
        residual = (x64 - hi.astype(np.float64)) * 2.0**SCALE_BITS
        return _ScaledPair(hi=hi, lo_scaled=residual.astype(np.float16))

    def split(self, x: np.ndarray) -> SplitPair:
        """Protocol view: the low term de-scaled back to fp16.

        De-scaling re-introduces the subnormal floor, so this view is
        only for interoperability; the scaled emulation path uses
        :meth:`split_scaled`.
        """
        pair = self.split_scaled(x)
        lo = (pair.lo_scaled.astype(np.float64) * 2.0**-SCALE_BITS).astype(np.float16)
        return SplitPair(hi=pair.hi, lo=lo)


def scaled_emulated_gemm(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None, tk: int = 16
) -> np.ndarray:
    """Markidis-style emulation with explicit rescale combination.

    Four Tensor Core products per chunk, but the three low-involving
    products accumulate in *separate* fp32 buffers that a CUDA-core pass
    rescales (2^-11 / 2^-22) and adds — the extra memory traffic and
    kernel-fusion obstacle the unscaled EGEMM-TC design avoids.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    if a32.ndim != 2 or b32.ndim != 2 or a32.shape[1] != b32.shape[0]:
        raise ValueError("scaled_emulated_gemm expects (m,k) @ (k,n)")
    m, k = a32.shape
    n = b32.shape[1]

    split = ScaledTruncateSplit()
    pa = split.split_scaled(a32)
    pb = split.split_scaled(b32)

    d_hh = np.zeros((m, n), dtype=np.float32)
    d_hl = np.zeros((m, n), dtype=np.float32)  # scaled by 2^11
    d_lh = np.zeros((m, n), dtype=np.float32)  # scaled by 2^11
    d_ll = np.zeros((m, n), dtype=np.float32)  # scaled by 2^22

    def acc(d: np.ndarray, ta: np.ndarray, tb: np.ndarray, k0: int, k1: int) -> np.ndarray:
        wide = ta[:, k0:k1].astype(np.float64) @ tb[k0:k1, :].astype(np.float64)
        return (d.astype(np.float64) + wide).astype(np.float32)

    for k0 in range(0, k, tk):
        k1 = min(k0 + tk, k)
        d_ll = acc(d_ll, pa.lo_scaled, pb.lo_scaled, k0, k1)
        d_hl = acc(d_hl, pa.hi, pb.lo_scaled, k0, k1)
        d_lh = acc(d_lh, pa.lo_scaled, pb.hi, k0, k1)
        d_hh = acc(d_hh, pa.hi, pb.hi, k0, k1)

    # CUDA-core combination pass: rescale and sum in fp32 (power-of-two
    # scales are exact; each addition rounds once, smallest terms first).
    cross = (d_hl + d_lh).astype(np.float32)
    d = (d_ll * np.float32(2.0 ** (-2 * SCALE_BITS))).astype(np.float32)
    d = (d + cross * np.float32(2.0**-SCALE_BITS)).astype(np.float32)
    d = (d + d_hh).astype(np.float32)
    if c is not None:
        d = (d + np.asarray(c, dtype=np.float32)).astype(np.float32)
    return d
