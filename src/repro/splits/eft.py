"""Error-free transformations (Dekker [7], Knuth [14], Shewchuk [36]).

These are the classical CPU-era building blocks the paper contrasts its
lightweight emulation against.  Each transform expresses an exact result as
an unevaluated sum of two floating-point numbers of the *working* precision:

* :func:`two_sum` — Knuth's 6-operation exact addition,
* :func:`fast_two_sum` — Dekker's 3-operation variant (|a| >= |b|),
* :func:`veltkamp_split` — Dekker/Veltkamp's multiplier-based split,
* :func:`two_prod` — Dekker's 17-operation exact product (split + 7 ops).

The working precision is parameterized: ``dtype=np.float16`` gives the
half-precision instruction stream Dekker-on-Tensor-Core-inputs would need
(the 16-instruction emulation of the paper's §1), ``np.float32``/
``np.float64`` give the standard CPU forms used as references in tests.

Every function also reports its *operation count* so the emulation-overhead
comparison (16 half instructions per emulated FMA for Dekker vs 4 HMMA
calls for EGEMM-TC) is grounded in code rather than prose.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "two_sum",
    "fast_two_sum",
    "veltkamp_split",
    "two_prod",
    "TWO_SUM_OPS",
    "FAST_TWO_SUM_OPS",
    "VELTKAMP_SPLIT_OPS",
    "TWO_PROD_OPS",
    "DEKKER_EMULATED_FMA_OPS",
]

#: flop counts of each transform in the working precision
TWO_SUM_OPS = 6
FAST_TWO_SUM_OPS = 3
VELTKAMP_SPLIT_OPS = 4
TWO_PROD_OPS = 2 * VELTKAMP_SPLIT_OPS + 9  # two splits + product/remainder chain

#: multiplies needed per emulated extended-precision multiply-accumulate when
#: both operands are already split into (hi, lo) pairs and all four partial
#: products must be formed and combined pairwise: 4 products + 12 combination
#: adds — the "16 half-precision instructions" of Dekker quoted in §1.
DEKKER_EMULATED_FMA_OPS = 16


def _rn(x: np.ndarray, dtype) -> np.ndarray:
    """Round to the working precision (simulating that format's ALU)."""
    return np.asarray(x).astype(dtype)


def two_sum(a: np.ndarray, b: np.ndarray, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Knuth two-sum: returns (s, e) with s = RN(a+b) and a+b = s+e exactly.

    Exactness holds when no intermediate overflows; it does not require any
    ordering of |a| and |b|.
    """
    a = _rn(a, dtype)
    b = _rn(b, dtype)
    s = _rn(a + b, dtype)
    bp = _rn(s - a, dtype)
    ap = _rn(s - bp, dtype)
    db = _rn(b - bp, dtype)
    da = _rn(a - ap, dtype)
    e = _rn(da + db, dtype)
    return s, e


def fast_two_sum(a: np.ndarray, b: np.ndarray, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Dekker fast-two-sum: exact when |a| >= |b| elementwise."""
    a = _rn(a, dtype)
    b = _rn(b, dtype)
    s = _rn(a + b, dtype)
    z = _rn(s - a, dtype)
    e = _rn(b - z, dtype)
    return s, e


def _mantissa_bits(dtype) -> int:
    return {np.dtype(np.float16): 10, np.dtype(np.float32): 23, np.dtype(np.float64): 52}[
        np.dtype(dtype)
    ]


def veltkamp_split(a: np.ndarray, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Dekker/Veltkamp split: a = hi + lo with hi, lo each on ~p/2 bits.

    Uses the magic multiplier ``2**ceil(t/2) + 1`` where ``t`` is the full
    significand width (stored mantissa + implicit bit; 27 for binary64,
    12 for binary32, 6 for binary16).  This is the split Dekker's
    emulation uses on hardware whose input and output precision coincide —
    contrast with the paper's round-split, which targets hardware with
    *wider output than input* precision.
    """
    a = _rn(a, dtype)
    t = _mantissa_bits(dtype) + 1
    factor = _rn(2.0 ** ((t + 1) // 2) + 1.0, dtype)
    c = _rn(factor * a, dtype)
    hi = _rn(c - _rn(c - a, dtype), dtype)
    lo = _rn(a - hi, dtype)
    return hi, lo


def two_prod(a: np.ndarray, b: np.ndarray, dtype=np.float64) -> tuple[np.ndarray, np.ndarray]:
    """Dekker two-prod: (p, e) with p = RN(a*b) and a*b = p+e exactly.

    Exact for working formats where the product's exponent stays in range
    and 2p-bit products split cleanly (standard Dekker conditions).
    """
    a = _rn(a, dtype)
    b = _rn(b, dtype)
    p = _rn(a * b, dtype)
    ah, al = veltkamp_split(a, dtype)
    bh, bl = veltkamp_split(b, dtype)
    e1 = _rn(_rn(ah * bh, dtype) - p, dtype)
    e2 = _rn(e1 + _rn(ah * bl, dtype), dtype)
    e3 = _rn(e2 + _rn(al * bh, dtype), dtype)
    e = _rn(e3 + _rn(al * bl, dtype), dtype)
    return p, e
