"""Three-term split: an extension beyond the paper's two-term design.

The round-split recovers 21 of fp32's 24 significand bits.  Splitting
into *three* half-precision terms captures 2-3 further bits at the cost
of 9 Tensor Core calls per emulated GEMM (every pairwise product of the
3x3 split terms) instead of 4 — the next point on the precision/overhead
curve the paper's §3 opens.

**Range limitation (a finding of this reproduction).**  Full fp32
recovery is *not* achievable with unscaled fp16 terms: for an operand
near 0.25, the third residual sits near 3e-8, below fp16's smallest
subnormal (2^-24 ~= 6e-8), and underflows to zero.  Recovering it would
require Markidis-style scaling of the low term (store ``lo * 2^12``),
but a scaled term cannot be accumulated by the Tensor Core's plain
``D = A x B + C`` primitive — it needs a separate accumulator and a
CUDA-core rescale pass, breaking the lightweight 4/9-call structure.
This is a concrete reason the paper's design stops at two terms.
Accordingly the split is "up to 24 bits, floored at fp16's subnormal
quantum": reconstruction error is bounded by 2^-24 absolute for
operands of magnitude <= 2 and is *zero* whenever the third residual is
fp16-representable.

This module provides the split; the matching emulation scheme lives in
:mod:`repro.emulation.extended` (``EGEMM3``), and an ablation benchmark
compares the 4-call and 9-call designs on both axes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Split, SplitPair

__all__ = ["ThreeTermSplit", "SplitTriple", "three_term_split"]


@dataclass(frozen=True)
class SplitTriple:
    """(hi, mid, lo) half-precision triple of a three-term split."""

    hi: np.ndarray
    mid: np.ndarray
    lo: np.ndarray

    def __post_init__(self) -> None:
        for part in (self.hi, self.mid, self.lo):
            if part.dtype != np.float16:
                raise TypeError("split parts must be float16")
            if part.shape != self.hi.shape:
                raise ValueError("split parts must share a shape")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.hi.shape

    def reconstruct(self) -> np.ndarray:
        """Exact sum of the three terms in float64."""
        return (
            self.hi.astype(np.float64)
            + self.mid.astype(np.float64)
            + self.lo.astype(np.float64)
        )

    def terms(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (self.hi, self.mid, self.lo)


class ThreeTermSplit(Split):
    """Recursive round-split: x = hi + mid + lo, each term fp16.

    The two-term ``split`` interface folds ``mid + lo`` into a float16
    pair where possible; use :meth:`split3` for the full triple.
    """

    name = "three-term"
    #: up to fp32's full 24 significand bits, floored at fp16's subnormal
    #: quantum (see the module docstring's range limitation)
    effective_mantissa_bits = 23

    def split3(self, x: np.ndarray) -> SplitTriple:
        x64 = np.asarray(x, dtype=np.float32).astype(np.float64)
        hi = x64.astype(np.float16)
        r1 = x64 - hi.astype(np.float64)
        mid = r1.astype(np.float16)
        r2 = r1 - mid.astype(np.float64)
        lo = r2.astype(np.float16)
        return SplitTriple(hi=hi, mid=mid, lo=lo)

    def split(self, x: np.ndarray) -> SplitPair:
        """Two-term view: (hi, mid) — the lo term is dropped.

        Provided for protocol compatibility; precision-sensitive callers
        should use :meth:`split3`.
        """
        triple = self.split3(x)
        return SplitPair(hi=triple.hi, lo=triple.mid)

    def max_reconstruction_error3(self, x: np.ndarray) -> float:
        """Largest |x - (hi + mid + lo)| — bounded by fp16's smallest
        subnormal (2^-24) for |x| <= 2; zero when the third residual is
        fp16-representable."""
        x64 = np.asarray(x, dtype=np.float32).astype(np.float64)
        triple = self.split3(x64)
        return float(np.max(np.abs(x64 - triple.reconstruct()))) if x64.size else 0.0


def three_term_split(x: np.ndarray) -> SplitTriple:
    """Functional wrapper around :class:`ThreeTermSplit`."""
    return ThreeTermSplit().split3(x)
