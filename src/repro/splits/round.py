"""Round-split: the paper's data split (§3.2, Figure 4b).

Like truncate-split, the value is decomposed into two half-precision terms,
but ``xhi`` is obtained by *round-to-nearest*: when the 21st mantissa bit
``s`` of the source is set, 1 is added to the 10th mantissa bit of ``xhi``
and ``xlo`` is recomputed against the incremented high part.  The residual
is therefore bounded by half a ulp of ``xhi`` and may be negative even for
positive ``x`` — the sign bit of ``xlo`` encodes one extra effective
mantissa bit, for 21 bits total ("extended-precision" in Table 1).

The split runs once per element, O(N²) against the O(N³) multiplication,
so its cost is negligible in the emulated GEMM; in the real system it runs
on CUDA cores while the matrix product runs on Tensor Cores.
"""

from __future__ import annotations

import numpy as np

from .base import Split, SplitPair

__all__ = ["RoundSplit", "round_split"]


class RoundSplit(Split):
    """EGEMM-TC round-based two-term split (21 effective mantissa bits)."""

    name = "round"
    effective_mantissa_bits = 21

    def split(self, x: np.ndarray) -> SplitPair:
        x32 = np.asarray(x, dtype=np.float32)
        # NumPy's float16 cast implements IEEE round-to-nearest-even, which
        # is exactly the "check bit s, maybe add 1 to the 10th mantissa bit"
        # procedure of Figure 4b (ties go to even rather than always up;
        # the paper's description elides the tie case).
        hi = x32.astype(np.float16)
        # The residual is computed against the *rounded* high part, so it
        # may carry either sign; its float16 rounding is the low term.
        # The fp32 subtraction is exact — x and hi sit on a shared grid
        # at most 2^12 ulp(x) steps apart, so the difference always fits
        # fp32's significand (same bits as a float64 residual, without
        # the slow f64<->f16 software casts).
        lo = (x32 - hi.astype(np.float32)).astype(np.float16)
        return SplitPair(hi=hi, lo=lo)


def round_split(x: np.ndarray) -> SplitPair:
    """Functional convenience wrapper around :class:`RoundSplit`."""
    return RoundSplit().split(x)
