"""Data-split algorithms: round-split (EGEMM-TC), truncate-split (Markidis),
Dekker error-free transforms, and the common split protocol."""

from .base import Split, SplitPair
from .dekker import DekkerSplit, DekkerStats, dekker_dot, dekker_gemm
from .eft import (
    DEKKER_EMULATED_FMA_OPS,
    FAST_TWO_SUM_OPS,
    TWO_PROD_OPS,
    TWO_SUM_OPS,
    VELTKAMP_SPLIT_OPS,
    fast_two_sum,
    two_prod,
    two_sum,
    veltkamp_split,
)
from .ozaki import OzakiSlices, ozaki_gemm, ozaki_slice
from .round import RoundSplit, round_split
from .scaled import SCALE_BITS, ScaledTruncateSplit, scaled_emulated_gemm
from .three_term import SplitTriple, ThreeTermSplit, three_term_split
from .truncate import TruncateSplit, truncate_split

__all__ = [
    "Split",
    "SplitPair",
    "DekkerSplit",
    "DekkerStats",
    "dekker_dot",
    "dekker_gemm",
    "DEKKER_EMULATED_FMA_OPS",
    "FAST_TWO_SUM_OPS",
    "TWO_PROD_OPS",
    "TWO_SUM_OPS",
    "VELTKAMP_SPLIT_OPS",
    "fast_two_sum",
    "two_prod",
    "two_sum",
    "veltkamp_split",
    "OzakiSlices",
    "ozaki_gemm",
    "ozaki_slice",
    "RoundSplit",
    "round_split",
    "SCALE_BITS",
    "ScaledTruncateSplit",
    "scaled_emulated_gemm",
    "SplitTriple",
    "ThreeTermSplit",
    "three_term_split",
    "TruncateSplit",
    "truncate_split",
]
