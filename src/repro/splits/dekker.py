"""Dekker-style emulation baseline (the 16-instruction scheme of §1/§2.2).

Dekker [7] assumes hardware whose computation precision equals its input
precision.  To emulate an extended-precision multiply-accumulate from
half-precision scalar instructions, both operands are pre-split into
(hi, lo) half pairs; the four partial products are then formed and combined
with compensated additions, costing ~16 serialized half-precision
instructions per emulated FMA — the overhead that makes Dekker emulation
unattractive on Tensor Cores (8x throughput advantage < 16x instruction
overhead).

This module provides the baseline functionally:

* :class:`DekkerSplit` — the Veltkamp-style half split of an fp32 value,
* :func:`dekker_dot` / :func:`dekker_gemm` — a dot product / GEMM whose
  every scalar operation is rounded to half precision, with the accumulator
  held as an unevaluated (hi, lo) half pair,
* instruction accounting so the 16x-vs-4x comparison is measurable.

Vectorization note: the k-loop is a Python loop (it is inherently a
serialized dependence chain — that is Dekker's point), but each iteration
is a fully vectorized NumPy operation over the whole output matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Split, SplitPair
from .eft import DEKKER_EMULATED_FMA_OPS, two_sum
from .round import RoundSplit

__all__ = ["DekkerSplit", "dekker_dot", "dekker_gemm", "DekkerStats"]


class DekkerSplit(Split):
    """Two-term half split used as the input stage of Dekker emulation.

    Operationally identical to round-split (round-to-nearest high part);
    kept as a distinct class because the downstream *combination* differs:
    Dekker combines in half precision, EGEMM-TC combines in the Tensor
    Core's single-precision accumulator.
    """

    name = "dekker"
    effective_mantissa_bits = 20  # limited by half-precision combination

    def split(self, x: np.ndarray) -> SplitPair:
        return RoundSplit().split(x)


@dataclass
class DekkerStats:
    """Instruction accounting for a Dekker-emulated GEMM."""

    emulated_fmas: int = 0

    @property
    def half_instructions(self) -> int:
        """Total half-precision scalar instructions executed."""
        return self.emulated_fmas * DEKKER_EMULATED_FMA_OPS

    @property
    def overhead_factor(self) -> int:
        """Half instructions per emulated FMA — the 16x of the paper."""
        return DEKKER_EMULATED_FMA_OPS


def _h(x: np.ndarray) -> np.ndarray:
    """Round to half precision (simulating a half-precision ALU)."""
    return np.asarray(x).astype(np.float16)


def dekker_dot(a: np.ndarray, b: np.ndarray, stats: DekkerStats | None = None) -> np.ndarray:
    """Extended-precision dot products along the last axis of ``a``/``b``.

    ``a`` has shape (..., k) and ``b`` shape (..., k); every arithmetic
    operation is rounded to float16, and the accumulator is an unevaluated
    (hi, lo) half pair maintained with compensated two-sums.  Returns the
    float32 value of the pair.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    if a32.shape[-1] != b32.shape[-1]:
        raise ValueError("k-dimension mismatch")
    split = DekkerSplit()
    pa = split.split(a32)
    pb = split.split(b32)

    out_shape = np.broadcast_shapes(a32.shape[:-1], b32.shape[:-1])
    chi = np.zeros(out_shape, dtype=np.float16)
    clo = np.zeros(out_shape, dtype=np.float16)
    k = a32.shape[-1]
    for j in range(k):
        ahi, alo = pa.hi[..., j], pa.lo[..., j]
        bhi, blo = pb.hi[..., j], pb.lo[..., j]
        # Four half partial products; ahi*bhi dominates, cross terms refine.
        p_hh = _h(ahi * bhi)
        p_hl = _h(ahi * blo)
        p_lh = _h(alo * bhi)
        p_ll = _h(alo * blo)
        # Combine the correction terms in half precision.
        corr = _h(_h(p_hl + p_lh) + p_ll)
        # Compensated accumulation of (p_hh + corr) into the (hi, lo) pair.
        s, e = two_sum(chi, p_hh, dtype=np.float16)
        e = _h(e + corr)
        e = _h(e + clo)
        chi, clo = s, e
        if stats is not None:
            stats.emulated_fmas += int(np.prod(out_shape))
    return chi.astype(np.float32) + clo.astype(np.float32)


def dekker_gemm(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None, stats: DekkerStats | None = None
) -> np.ndarray:
    """Dekker-emulated GEMM ``D = A @ B + C`` with half-only arithmetic.

    Intended as a *functional* baseline at small sizes; its per-scalar
    Python-level k-loop makes it intentionally slow, mirroring the
    serialized instruction chain the paper criticises.
    """
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    if a32.ndim != 2 or b32.ndim != 2 or a32.shape[1] != b32.shape[0]:
        raise ValueError("dekker_gemm expects (m,k) @ (k,n)")
    # Broadcast to (m, n, k) views (no copies) and reduce along k.
    av = a32[:, None, :]
    bv = b32.T[None, :, :]
    d = dekker_dot(av, bv, stats=stats)
    if c is not None:
        d = d + np.asarray(c, dtype=np.float32)
    return d.astype(np.float32)
