"""Ozaki-scheme emulation on the integer tensor core (the ozIMMU line).

A forward-looking extension: where the paper splits fp32 into *two fp16
values* and pays rounding inside every Tensor Core call, the Ozaki scheme
slices each operand row/column into **int8 digit planes** under a shared
per-row power-of-two exponent, multiplies the planes on the *exact*
integer tensor core (:mod:`repro.tensorcore.imma`), and rounds only in
the final fp64 recombination.  Accuracy is then a free parameter — each
extra slice buys 7 mantissa bits — at quadratic cost in slice pairs:

=========  ==============  ====================================
slices     IMMA calls      effective input mantissa (approx)
=========  ==============  ====================================
2          4               ~13 bits (near half precision)
3          9               ~20 bits (round-split class)
4          16              ~27 bits (full fp32 inputs, exactly)
=========  ==============  ====================================

The per-row exponent sidesteps fp16's range problem entirely (the issue
that floors the three-term fp16 split, :mod:`repro.splits.three_term`) —
which is precisely why the post-EGEMM-TC literature moved to integer
pipes.  The trade: digit slicing is *blockwise* (one exponent per row),
so badly scaled rows waste digits, and the recombination is a CUDA-core
pass the fp16 scheme's fused accumulation avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensorcore.imma import imma

__all__ = ["OzakiSlices", "ozaki_slice", "ozaki_gemm"]

#: normalization margin: |normalized| < 2^_LEAD_BITS with one spare bit of
#: headroom so rounding carries never clip at the int8 boundary
_LEAD_BITS = 6
#: bits carried by each digit plane (7 keeps every rounded residual
#: strictly inside [-64, 64] — no digit is ever clipped)
_DIGIT_BITS = 7


@dataclass(frozen=True)
class OzakiSlices:
    """Digit-plane decomposition of one matrix along its rows.

    ``value[i, j] ~= 2^(exponents[i] - LEAD_BITS) *
    sum_p digits[p, i, j] * 2^(-DIGIT_BITS * p)``.
    """

    digits: np.ndarray  # (slices, rows, cols) int8
    exponents: np.ndarray  # (rows,) int64 — per-row shared exponent

    @property
    def num_slices(self) -> int:
        return self.digits.shape[0]

    def reconstruct(self) -> np.ndarray:
        """Float64 value of the decomposition (for error analysis)."""
        scale0 = np.exp2(self.exponents - _LEAD_BITS)[:, None]
        out = np.zeros(self.digits.shape[1:], dtype=np.float64)
        for p in range(self.num_slices):
            out += self.digits[p].astype(np.float64) * 2.0 ** (-_DIGIT_BITS * p)
        return out * scale0


def ozaki_slice(x: np.ndarray, slices: int = 3, axis: int = 1) -> OzakiSlices:
    """Slice a matrix into int8 digit planes with per-row exponents.

    ``axis=1`` shares one exponent per row (for the A operand);
    ``axis=0`` per column (for B — internally transposed and restored).
    """
    if slices < 1:
        raise ValueError("need at least one slice")
    x64 = np.asarray(x, dtype=np.float64)
    if x64.ndim != 2:
        raise ValueError("ozaki_slice expects a matrix")
    if axis == 0:
        t = ozaki_slice(x64.T, slices=slices, axis=1)
        return OzakiSlices(digits=np.swapaxes(t.digits, 1, 2), exponents=t.exponents)
    if axis != 1:
        raise ValueError("axis must be 0 or 1")

    # initial=0.0: keeps k=0 (empty-reduction) operands well-defined —
    # zero rows get exponent 0 and all-zero digit planes.
    row_max = np.max(np.abs(x64), axis=1, initial=0.0)
    # Exponent such that |x| / 2^e < 1; zero rows get exponent 0.
    exponents = np.where(row_max > 0, np.ceil(np.log2(np.maximum(row_max, 1e-300))), 0.0)
    exponents = exponents.astype(np.int64)

    # |normalized| < 2^_LEAD_BITS = 64: the leading digit rounds to at
    # most 64 and every residual (|r| <= 0.5 scaled by 2^7) stays within
    # [-64, 64] — the int8 range is never clipped, so the expansion is
    # error-free down to the last plane's rounding.
    normalized = x64 / np.exp2(exponents - _LEAD_BITS)[:, None]
    digits = np.empty((slices, *x64.shape), dtype=np.int8)
    residual = normalized
    for p in range(slices):
        d = np.rint(residual)
        digits[p] = d.astype(np.int8)
        residual = (residual - d) * 2.0**_DIGIT_BITS
    return OzakiSlices(digits=digits, exponents=exponents)


def ozaki_gemm(
    a: np.ndarray, b: np.ndarray, c: np.ndarray | None = None, slices: int = 3
) -> np.ndarray:
    """Ozaki-scheme GEMM: slices^2 exact IMMA calls + fp64 recombination.

    Digit-pair products whose combined weight falls below the last
    retained plane could be skipped (the triangular optimization of the
    ozIMMU implementations); this reference keeps all pairs so precision
    statements stay simple.
    """
    a64 = np.asarray(a, dtype=np.float32).astype(np.float64)
    b64 = np.asarray(b, dtype=np.float32).astype(np.float64)
    if a64.ndim != 2 or b64.ndim != 2 or a64.shape[1] != b64.shape[0]:
        raise ValueError("ozaki_gemm expects (m,k) @ (k,n)")

    sa = ozaki_slice(a64, slices=slices, axis=1)
    sb = ozaki_slice(b64, slices=slices, axis=0)

    # Per-element scale: outer product of the row/column base scales.
    scale = np.exp2(sa.exponents - _LEAD_BITS)[:, None] * np.exp2(sb.exponents - _LEAD_BITS)[None, :]

    acc = np.zeros((a64.shape[0], b64.shape[1]), dtype=np.float64)
    for p in range(slices):
        for q in range(slices):
            exact = imma(sa.digits[p], sb.digits[q])  # int32, exact
            acc += exact.astype(np.float64) * 2.0 ** (-_DIGIT_BITS * (p + q))
    d = acc * scale
    if c is not None:
        d = d + np.asarray(c, dtype=np.float32).astype(np.float64)
    return d.astype(np.float32)
