"""Common protocol for data-split algorithms (§3 of the paper).

A *split* decomposes a single-precision matrix ``X`` into a small number of
half-precision matrices whose (exact) sum approximates ``X`` to more
mantissa bits than a single half-precision value can hold.  The split is the
first half of the generalized emulation design workflow (Figure 2b: "Data
Split"); the matching *data combination* lives in :mod:`repro.emulation`.

Splits run once per matrix element — O(N²) work against the O(N³) GEMM —
which is why the paper calls their overhead negligible (§3.2).  In the real
system they execute on CUDA cores; here they are vectorized NumPy bit
manipulation.
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import get_registry
from ..obs.tracing import get_tracer

__all__ = ["SplitPair", "Split"]


def _observed(split_method):
    """Wrap a split algorithm with a span and registry accounting.

    Applied once per concrete subclass by ``Split.__init_subclass__`` —
    every split algorithm reports through the same ``splits.split`` span
    and ``splits.*`` counters without carrying instrumentation itself.
    The split is O(N²) per call, so one enabled-check here is noise.
    """

    @functools.wraps(split_method)
    def wrapper(self, x, *args, **kwargs):
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "splits.split", category="splits", split=self.name,
                elements=int(np.asarray(x).size),
            ):
                pair = split_method(self, x, *args, **kwargs)
        else:
            pair = split_method(self, x, *args, **kwargs)
        registry = get_registry()
        if registry.enabled:
            registry.inc("splits.calls")
            registry.inc("splits.elements", int(np.asarray(x).size))
        return pair

    wrapper.__wrapped_by_obs__ = True
    return wrapper


@dataclass(frozen=True)
class SplitPair:
    """The (hi, lo) half-precision pair produced by a two-term split.

    ``hi`` carries the leading ~10 mantissa bits of the source value and
    ``lo`` the next ~10 (plus, for round-split, one extra effective bit in
    its sign).  Both are stored as ``float16`` arrays, exactly as they
    would be laid out in GPU global memory before the HMMA calls.
    """

    hi: np.ndarray
    lo: np.ndarray

    def __post_init__(self) -> None:
        if self.hi.dtype != np.float16 or self.lo.dtype != np.float16:
            raise TypeError("split parts must be float16")
        if self.hi.shape != self.lo.shape:
            raise ValueError("split parts must share a shape")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.hi.shape

    def reconstruct(self) -> np.ndarray:
        """Exact sum ``hi + lo`` in float64 (the emulated value)."""
        return self.hi.astype(np.float64) + self.lo.astype(np.float64)


class Split(abc.ABC):
    """A two-term single→half data-split algorithm."""

    #: short name used in reports and the kernel registry
    name: str = "abstract"
    #: effective mantissa bits of the reconstructed value (Table 1 column)
    effective_mantissa_bits: int = 0

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        split_method = cls.__dict__.get("split")
        if split_method is not None and not getattr(split_method, "__wrapped_by_obs__", False):
            cls.split = _observed(split_method)

    @abc.abstractmethod
    def split(self, x: np.ndarray) -> SplitPair:
        """Decompose single-precision ``x`` into a half-precision pair.

        ``x`` is converted to float32 first: the paper's emulation takes
        single-precision inputs (Algorithm 1), so any extra bits beyond
        fp32 are, by definition, out of scope for the split.
        """

    def max_reconstruction_error(self, x: np.ndarray) -> float:
        """Largest |x - (hi + lo)| over the array, for diagnostics."""
        x32 = np.asarray(x, dtype=np.float32).astype(np.float64)
        pair = self.split(x32)
        return float(np.max(np.abs(x32 - pair.reconstruct()))) if x32.size else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, bits={self.effective_mantissa_bits})"
