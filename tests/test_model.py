"""Tests for the hardware-aware analytic model (§6) and its solver."""

import pytest

from repro.gpu.spec import RTX6000, TESLA_T4
from repro.model import resources as R
from repro.model.solver import DesignSpace, solve, table4_rows
from repro.tensorize.tiling import T4_TILING


class TestEquations:
    def test_eq2(self):
        assert R.global_bytes_per_iteration(128, 128, 32) == 4 * 256 * 32

    def test_eq3(self):
        assert R.flops_per_iteration(128, 128, 32) == 8 * 128 * 128 * 32

    def test_eq4(self):
        assert R.compute_intensity(128, 128) == pytest.approx(128.0)
        # Square blocks maximize intensity for a fixed perimeter.
        assert R.compute_intensity(128, 128) > R.compute_intensity(256, 64)

    def test_eq4_matches_tiling_property(self):
        assert R.compute_intensity(T4_TILING.bm, T4_TILING.bn) == T4_TILING.compute_intensity

    def test_eq5_structure(self):
        times = R.times_from_spec(TESLA_T4)
        t = R.t_comp(128, 128, 32, times)
        # flops / (2*16*8*8*4) HMMA groups, each t_hmma cycles
        assert t == pytest.approx(8 * 128 * 128 * 32 / 8192 * times.t_hmma)

    def test_eq6_eq7_positive_and_bk_linear(self):
        times = R.times_from_spec(TESLA_T4)
        m1 = R.t_mem1(128, 128, 32, times)
        m2 = R.t_mem2(128, 128, 32, 64, 32, 8, times)
        assert m1 > 0 and m2 > 0
        assert R.t_mem1(128, 128, 64, times) == pytest.approx(2 * m1)

    def test_compute_bound_at_design_point(self):
        """Eq. 8 c3 holds at the paper's choice: T_Mem1 + T_Mem2 <= T_Comp."""
        times = R.times_from_spec(TESLA_T4)
        tm = R.t_mem1(128, 128, 32, times) + R.t_mem2(128, 128, 32, 64, 32, 8, times)
        assert tm <= R.t_comp(128, 128, 32, times)

    def test_register_and_shmem_footprints(self):
        assert R.register_bytes(128, 128, 32) == 4 * 128 * 128 + 4 * 256 * 32
        assert R.shmem_bytes(128, 128, 32, pad=8) == 2 * 256 * 40 * 2


class TestSolver:
    def test_reproduces_table4_on_t4(self):
        """The headline §6 result: the solver lands on the paper's point."""
        result = solve(TESLA_T4)
        cfg = result.best
        assert (cfg.bm, cfg.bn, cfg.bk) == (128, 128, 32)
        assert (cfg.wm, cfg.wn, cfg.wk) == (64, 32, 8)
        assert cfg.shared_mem_bytes == 36 * 1024
        assert cfg.warps_per_block == 8
        assert result.blocks_per_sm(TESLA_T4) == 1

    def test_table4_rows_format(self):
        rows = {r["item"]: r["value"] for r in table4_rows(TESLA_T4)}
        assert rows["(bm, bn, bk)"] == "(128, 128, 32)"
        assert rows["(wm, wn, wk)"] == "(64, 32, 8)"
        assert rows["Shared memory/block"] == "36 KB"
        assert rows["Active Blocks/SM"] == "1"
        assert rows["Active Warps / Block"] == "8"

    def test_solver_on_rtx6000_feasible(self):
        """Same per-SM budgets on TU102 -> same block design is feasible."""
        result = solve(RTX6000)
        assert result.feasible_count > 0
        assert result.objective >= 128.0

    def test_objective_is_best_among_feasible(self):
        result = solve(TESLA_T4, keep_candidates=True)
        feasible = [c for c in result.candidates if c.feasible]
        assert result.objective == pytest.approx(max(c.objective for c in feasible))

    def test_infeasible_space_raises(self):
        tiny = TESLA_T4.with_overrides(shared_mem_per_sm=1024, register_file_per_sm=4096)
        with pytest.raises(RuntimeError, match="no feasible tiling"):
            solve(tiny)

    def test_constraint_attribution(self):
        result = solve(TESLA_T4, keep_candidates=True)
        violated = [c for c in result.candidates if not c.feasible]
        assert violated
        reasons = {v for c in violated for v in c.violated}
        assert any("register" in r for r in reasons)
        assert any("shared-memory" in r or "memory-bound" in r for r in reasons)

    def test_custom_design_space(self):
        space = DesignSpace(bm=(64,), bn=(64,), bk=(16,), wm=(32,), wn=(32,), wk=(8,))
        result = solve(TESLA_T4, space=space)
        assert (result.best.bm, result.best.bn) == (64, 64)
        assert result.evaluated == 1

    def test_design_space_respects_max_warps(self):
        space = DesignSpace(max_warps=4)
        for cfg in space.candidates():
            assert cfg.warps_per_block <= 4

    def test_bigger_shared_memory_allows_bigger_bk(self):
        """The shmem constraint binds bk (Eq. 8 c2): doubling the budget
        admits bk = 64."""
        big = TESLA_T4.with_overrides(shared_mem_per_sm=128 * 1024)
        result = solve(big)
        assert result.best.bk >= 32
