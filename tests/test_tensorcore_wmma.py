"""Tests for the warp-level WMMA-style API and probing primitives."""

import numpy as np
import pytest

from repro.tensorcore.fragment import FragmentRole
from repro.tensorcore.mma import M16N16K16, InternalPrecision, mma
from repro.tensorcore.probing import ALL_PROBES, ProbeSample, probe_sample
from repro.tensorcore.wmma import (
    WmmaContext,
    fill_fragment,
    load_matrix_sync,
    mma_sync,
    store_matrix_sync,
)


def _tile(rng, shape, dtype=np.float32):
    return rng.uniform(0, 1, shape).astype(dtype)


class TestWmmaApi:
    def test_full_cycle_matches_direct_mma(self, rng):
        ctx = WmmaContext()
        a32, b32 = _tile(rng, (16, 16)), _tile(rng, (16, 16))
        c32 = _tile(rng, (16, 16))

        frag_a = ctx.fragment(FragmentRole.MATRIX_A)
        frag_b = ctx.fragment(FragmentRole.MATRIX_B)
        frag_c = ctx.fragment(FragmentRole.ACCUMULATOR)
        load_matrix_sync(ctx, frag_a, a32.astype(np.float16))
        load_matrix_sync(ctx, frag_b, b32.astype(np.float16))
        load_matrix_sync(ctx, frag_c, c32)
        mma_sync(ctx, frag_c, frag_a, frag_b, frag_c)
        out = store_matrix_sync(ctx, frag_c)

        direct = mma(a32.astype(np.float16), b32.astype(np.float16), c32)
        assert np.array_equal(out, direct)

    def test_counters(self, rng):
        ctx = WmmaContext()
        frag_a = ctx.fragment(FragmentRole.MATRIX_A)
        frag_b = ctx.fragment(FragmentRole.MATRIX_B)
        frag_c = ctx.fragment(FragmentRole.ACCUMULATOR)
        load_matrix_sync(ctx, frag_a, _tile(rng, (16, 16), np.float16))
        load_matrix_sync(ctx, frag_b, _tile(rng, (16, 16), np.float16))
        fill_fragment(frag_c, 0.0)
        mma_sync(ctx, frag_c, frag_a, frag_b, frag_c)
        assert ctx.counter.calls == 1
        assert ctx.counter.flops == M16N16K16.flops
        assert ctx.load_bytes == 2 * 16 * 16 * 2
        store_matrix_sync(ctx, frag_c)
        assert ctx.store_bytes == 16 * 16 * 4

    def test_role_enforcement(self, rng):
        ctx = WmmaContext()
        frag_a = ctx.fragment(FragmentRole.MATRIX_A)
        frag_c = ctx.fragment(FragmentRole.ACCUMULATOR)
        with pytest.raises(TypeError):
            mma_sync(ctx, frag_c, frag_c, frag_a, frag_c)  # wrong roles

    def test_context_precision_respected(self, rng):
        a16 = _tile(rng, (16, 16), np.float16)
        b16 = _tile(rng, (16, 16), np.float16)
        for prec in (InternalPrecision.HALF, InternalPrecision.FLOAT):
            ctx = WmmaContext(precision=prec)
            fa = ctx.fragment(FragmentRole.MATRIX_A)
            fb = ctx.fragment(FragmentRole.MATRIX_B)
            fc = ctx.fragment(FragmentRole.ACCUMULATOR)
            load_matrix_sync(ctx, fa, a16)
            load_matrix_sync(ctx, fb, b16)
            fill_fragment(fc, 0.0)
            mma_sync(ctx, fc, fa, fb, fc)
            direct = mma(a16, b16, precision=prec)
            assert np.array_equal(fc.data, direct.astype(np.float32))


class TestProbes:
    def test_three_probes_registered(self):
        assert [p.name for p in ALL_PROBES] == ["d_HALF", "d_FLOAT", "d_EXACT"]

    def test_probe_sample_format(self, rng):
        a = _tile(rng, (16, 16), np.float16)
        b = _tile(rng, (16, 16), np.float16)
        sample = probe_sample(a, b)
        assert isinstance(sample, ProbeSample)
        lines = sample.lines()
        assert lines[0].startswith("half_result:")
        assert lines[1].startswith("single_result:")
        assert lines[2].startswith("Tensor Core :")
        assert all("0x" in line for line in lines)

    def test_sample_values_ordering(self, rng):
        """half result deviates far more from exact than the TC result."""
        a = _tile(rng, (16, 16), np.float16)
        b = _tile(rng, (16, 16), np.float16)
        sample = probe_sample(a, b)
        exact = float(mma(a, b, precision=InternalPrecision.EXACT)[0, 0])
        assert abs(sample.tensor_core_result - exact) < abs(sample.half_result - exact)
