"""Unit tests for repro.fp.formats — Table 1 precision specifications."""

import numpy as np
import pytest

from repro.fp.formats import EXTENDED, HALF, MARKIDIS, SINGLE, TABLE1, FloatFormat, table1_rows


class TestTable1:
    """The exact bit budgets of the paper's Table 1."""

    @pytest.mark.parametrize(
        "fmt,sign,exponent,mantissa",
        [(HALF, 1, 5, 10), (SINGLE, 1, 8, 23), (MARKIDIS, 1, 5, 20), (EXTENDED, 1, 5, 21)],
    )
    def test_bit_budgets(self, fmt, sign, exponent, mantissa):
        assert fmt.sign_bits == sign
        assert fmt.exponent_bits == exponent
        assert fmt.mantissa_bits == mantissa

    def test_rows_order_and_content(self):
        rows = table1_rows()
        assert [r["data_type"] for r in rows] == ["half", "single", "markidis", "extended"]
        assert rows[3]["mantissa"] == 21

    def test_emulated_flags(self):
        assert not HALF.emulated and not SINGLE.emulated
        assert MARKIDIS.emulated and EXTENDED.emulated

    def test_extended_has_one_more_bit_than_markidis(self):
        """The round-split recovers exactly one extra mantissa bit."""
        assert EXTENDED.mantissa_bits == MARKIDIS.mantissa_bits + 1


class TestFormatProperties:
    def test_epsilon(self):
        assert HALF.epsilon == 2.0**-10
        assert SINGLE.epsilon == 2.0**-23
        assert EXTENDED.epsilon == 2.0**-21

    def test_significand_bits(self):
        assert HALF.significand_bits == 11

    def test_total_bits(self):
        assert HALF.total_bits == 16
        assert SINGLE.total_bits == 32

    def test_exponent_range_half(self):
        assert HALF.max_exponent() == 15
        assert HALF.min_exponent() == -14

    def test_representable_max_half(self):
        assert HALF.representable_max() == pytest.approx(65504.0)

    def test_representable_max_single(self):
        assert SINGLE.representable_max() == pytest.approx(float(np.finfo(np.float32).max))


class TestQuantize:
    def test_half_quantize_matches_numpy(self, rng):
        x = rng.uniform(-10, 10, 100)
        assert np.array_equal(HALF.quantize(x), x.astype(np.float16).astype(np.float64))

    def test_single_quantize_matches_numpy(self, rng):
        x = rng.uniform(-10, 10, 100)
        assert np.array_equal(SINGLE.quantize(x), x.astype(np.float32).astype(np.float64))

    def test_extended_quantize_error_bound(self, rng):
        x = rng.uniform(0.5, 1.0, 1000)
        q = EXTENDED.quantize(x)
        # Rounding to 21 mantissa bits: error <= half the 2^-21 spacing.
        assert np.max(np.abs(q - x)) <= 2.0**-22

    def test_extended_strictly_finer_than_markidis(self, rng):
        x = rng.uniform(0.5, 1.0, 10000)
        e_ext = np.max(np.abs(EXTENDED.quantize(x) - x))
        e_mar = np.max(np.abs(MARKIDIS.quantize(x) - x))
        assert e_ext < e_mar

    def test_quantize_idempotent(self, rng):
        x = rng.uniform(-1, 1, 100)
        q = EXTENDED.quantize(x)
        assert np.array_equal(EXTENDED.quantize(q), q)


class TestCustomFormat:
    def test_arbitrary_format(self):
        bf16 = FloatFormat("bfloat16", 1, 8, 7)
        assert bf16.epsilon == 2.0**-7
        assert bf16.max_exponent() == 127
