"""Tests for the scaled Markidis split, batched GEMM, and bit formatting."""

import numpy as np
import pytest

from repro.emulation.gemm import EmulatedGemm, reference_exact
from repro.emulation.schemes import EGEMM, MARKIDIS
from repro.fp.bits import format_bits
from repro.fp.error import max_error
from repro.splits.scaled import SCALE_BITS, ScaledTruncateSplit, scaled_emulated_gemm


class TestScaledTruncateSplit:
    def test_scale_constant(self):
        assert SCALE_BITS == 11

    def test_scaled_reconstruction_beats_unscaled_truncate(self, rng):
        """Scaling lifts the residual out of fp16's subnormal range."""
        from repro.splits.truncate import TruncateSplit

        x = rng.uniform(-1.0, 1.0, 20000).astype(np.float32)
        x64 = x.astype(np.float64)
        scaled = ScaledTruncateSplit().split_scaled(x)
        err_scaled = float(np.max(np.abs(x64 - scaled.reconstruct())))
        err_plain = TruncateSplit().max_reconstruction_error(x)
        assert err_scaled < err_plain

    def test_protocol_view_descales(self, rng):
        x = rng.uniform(0.5, 1.0, 100).astype(np.float32)
        pair = ScaledTruncateSplit().split(x)
        # hi carries the chopped top bits; hi + lo approximates x
        err = np.max(np.abs(x.astype(np.float64) - pair.reconstruct()))
        assert err < 2.0**-19

    def test_lo_in_normal_fp16_range(self, rng):
        """The point of the scale: residuals of unit-scale inputs land in
        fp16's *normal* range (>= 6.1e-5), not its subnormals."""
        x = rng.uniform(0.25, 1.0, 10000).astype(np.float32)
        scaled = ScaledTruncateSplit().split_scaled(x)
        lo = np.abs(scaled.lo_scaled.astype(np.float64))
        nonzero = lo[lo > 0]
        assert np.all(nonzero >= 6.1e-5)


class TestScaledEmulation:
    def test_matches_round_split_precision(self, rng):
        """The scaled variant recovers what unscaled truncation loses —
        landing at round-split-level accuracy, at the cost of separate
        accumulators and a combination pass."""
        n = 128
        a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        b = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        exact = reference_exact(a, b)
        err_scaled = max_error(scaled_emulated_gemm(a, b), exact)
        err_round = max_error(EmulatedGemm(scheme=EGEMM)(a, b), exact)
        err_trunc = max_error(EmulatedGemm(scheme=MARKIDIS)(a, b), exact)
        assert err_scaled < err_trunc
        assert err_scaled < 2 * err_round

    def test_c_accumulation(self, rng):
        a = rng.uniform(-1, 1, (16, 32)).astype(np.float32)
        b = rng.uniform(-1, 1, (32, 16)).astype(np.float32)
        c = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
        d = scaled_emulated_gemm(a, b, c)
        assert max_error(d, reference_exact(a, b, c)) < 1e-4

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            scaled_emulated_gemm(np.zeros((4, 5), np.float32), np.zeros((4, 4), np.float32))


class TestBatchedGemm:
    def test_matches_loop(self, rng):
        g = EmulatedGemm()
        a = rng.uniform(-1, 1, (4, 8, 12)).astype(np.float32)
        b = rng.uniform(-1, 1, (4, 12, 8)).astype(np.float32)
        d = g.batched(a, b)
        assert d.shape == (4, 8, 8)
        for i in range(4):
            assert np.array_equal(d[i], g(a[i], b[i]))

    def test_broadcasting_batch_dims(self, rng):
        g = EmulatedGemm()
        a = rng.uniform(-1, 1, (3, 1, 8, 8)).astype(np.float32)
        b = rng.uniform(-1, 1, (1, 2, 8, 8)).astype(np.float32)
        d = g.batched(a, b)
        assert d.shape == (3, 2, 8, 8)
        assert np.array_equal(d[1, 0], g(a[1, 0], b[0, 0]))

    def test_with_c(self, rng):
        g = EmulatedGemm()
        a = rng.uniform(-1, 1, (2, 4, 6)).astype(np.float32)
        b = rng.uniform(-1, 1, (2, 6, 4)).astype(np.float32)
        c = rng.uniform(-1, 1, (2, 4, 4)).astype(np.float32)
        d = g.batched(a, b, c)
        for i in range(2):
            assert np.array_equal(d[i], g(a[i], b[i], c[i]))

    def test_validation(self, rng):
        g = EmulatedGemm()
        with pytest.raises(ValueError):
            g.batched(np.zeros((2, 4, 5), np.float32), np.zeros((2, 6, 4), np.float32))
        with pytest.raises(ValueError):
            g.batched(np.zeros(4, np.float32), np.zeros((4, 4), np.float32))


class TestFormatBits:
    def test_fp32_one(self):
        assert format_bits(1.0) == "0|01111111|" + "0" * 23

    def test_fp16_negative(self):
        assert format_bits(-1.5, np.float16) == "1|01111|1000000000"

    def test_field_widths(self):
        s = format_bits(3.14159)
        sign, exp, man = s.split("|")
        assert (len(sign), len(exp), len(man)) == (1, 8, 23)
