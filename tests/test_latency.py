"""Latency attribution: exact breakdowns, critical path, what-if engine.

Covers the acceptance contract of ``repro.obs.latency``:

* **exactness** — every terminal request's breakdown components are
  disjoint, non-negative, and sum *exactly* (``==`` on the virtual
  clock, no tolerance) to the engine's own ``latency_s``, on plain
  seeded load tests and across seeds × chaos scenarios (hypothesis
  property);
* **critical path** — byte-stable output for a fixed seed, chains
  cover completed requests, shares sum to 1;
* **what-if** — the skip-math replay reproduces the full run's virtual
  metrics exactly, and a scaled-scenario prediction validates against
  its actual re-run (completed exact, throughput within the band);
* **plumbing** — per-SLO-tier component histograms survive the
  OpenMetrics round trip, the flight log reconstructs the same exact
  breakdown the observer computes, the ``latency_breakdown`` exemplar
  event validates, the live SoA in-flight snapshot drains to zero, and
  ``ServeConfig(exec_time_scale=1.0)`` stays byte-identical to the
  default config.
"""

from __future__ import annotations

import json
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.latency import (
    COMPONENTS,
    breakdown_from_flight,
    component_registry,
    critical_path_report,
    exact_breakdown,
    format_breakdown,
    inflight_snapshot,
    run_whatif,
    timelines_from_flight,
    timelines_from_observer,
    validate_whatif_report,
    verify_breakdown,
)
from repro.obs.serving import ServeObserver
from repro.serve.loadgen import make_request, run_load_test
from repro.serve.service import GemmService, ServeConfig


def _observed_run(requests=120, seed=0, config=None, **kwargs):
    config = config if config is not None else ServeConfig()
    observer = ServeObserver(infeasible_deadline_s=config.max_wait_s)
    service, responses = run_load_test(
        requests, seed=seed, config=config, observer=observer, **kwargs
    )
    return service, observer, responses


class TestExactBreakdown:
    def test_every_terminal_request_sums_exactly(self):
        _service, observer, responses = _observed_run(150)
        timelines = timelines_from_observer(observer)
        assert len(timelines) == len(responses)
        statuses = set()
        for rid, tl in timelines.items():
            components = exact_breakdown(tl)
            assert set(components) == set(COMPONENTS)
            assert verify_breakdown(components, tl), (rid, tl.status)
            # the invariant spelled out: Fraction equality AND float
            # equality against the engine's own latency
            total = sum(components.values(), Fraction(0))
            assert float(total) == responses[rid].latency_s
            statuses.add(tl.status)
        # the seeded mix exercises more than one terminal status
        assert "completed" in statuses and len(statuses) >= 2

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 999),
        scenario=st.sampled_from((
            "baseline", "device-crash", "stall-hedge", "queue-storm",
            "combined", "blackout-recovery",
        )),
    )
    def test_exact_across_seeds_and_chaos(self, seed, scenario):
        from repro.serve.chaos import run_scenario

        _result, observer = run_scenario(scenario, seed=seed, requests=60)
        timelines = timelines_from_observer(observer)
        assert timelines
        for tl in timelines.values():
            components = exact_breakdown(tl)
            assert all(v >= 0 for v in components.values())
            assert verify_breakdown(components, tl), (scenario, seed, tl)

    def test_recovery_components_appear_under_chaos(self):
        from repro.serve.chaos import run_scenario

        _result, observer = run_scenario("combined", seed=0, requests=150)
        timelines = timelines_from_observer(observer)
        backoff = sum(
            exact_breakdown(tl)["retry_backoff"] for tl in timelines.values()
        )
        assert backoff > 0

    def test_chaos_runs_keep_chain_coverage(self):
        from repro.serve.chaos import run_scenario

        result, observer = run_scenario("combined", seed=0, requests=150)
        assert result["invariants"]["chain_coverage"] >= 0.99
        assert result["invariants"]["recovery_chain_coverage"] >= 0.99
        chain = observer.recovery_chain_report()
        assert chain["events"] > 0 and chain["linked"] == chain["events"]


class TestCriticalPath:
    def test_byte_stable_for_fixed_seed(self):
        blobs = []
        for _ in range(2):
            _service, observer, _ = _observed_run(120)
            report = critical_path_report(timelines_from_observer(observer))
            blobs.append(json.dumps(report, sort_keys=True))
        assert blobs[0] == blobs[1]

    def test_chains_and_shares(self):
        service, observer, _ = _observed_run(150)
        report = critical_path_report(timelines_from_observer(observer))
        assert report["completed_chains"] == service.completed
        assert report["chains"], "no critical chains despite completions"
        shares = report["component_share"]
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert report["top_component"] in shares
        assert report["top_share"] == shares[report["top_component"]]
        for chain in report["chains"]:
            # segments are chronological and non-overlapping
            cursor = chain["root_t"]
            for segment in chain["segments"]:
                assert segment["start"] >= cursor
                assert segment["end"] > segment["start"]
                cursor = segment["end"]
            assert cursor <= chain["terminal_t"]


class TestWhatIf:
    def test_skip_math_replay_is_virtually_identical(self):
        config = ServeConfig()
        runs = []
        for skip in (False, True):
            rng = np.random.default_rng(0)
            service = GemmService(config, skip_math=skip)
            from repro.serve.loadgen import open_loop_arrivals

            service.run(open_loop_arrivals(rng, 100, 150_000.0, "poisson"))
            runs.append(service)
        full, replay = runs
        assert replay.completed == full.completed
        assert replay.latencies == full.latencies
        assert replay.now == full.now

    def test_prediction_validates_against_rerun(self):
        report = run_whatif(requests=80, scenarios=("exec:0.8",))
        assert report["baseline"]["replay_consistent"]
        result = report["scenarios"]["exec:0.8"]
        assert result["validated"]
        assert (result["predicted"]["completed"]
                == result["actual"]["completed"])
        assert result["throughput_rel_err"] <= 0.05
        # faster execution can only help p99 on this workload
        assert result["actual_delta"]["latency_p99_s"] <= 0.0

    def test_report_schema(self):
        report = run_whatif(requests=60)
        assert validate_whatif_report(report) == []
        assert len(report["scenarios"]) == 3
        assert report["validated"]

    def test_exec_time_scale_default_is_byte_identical(self):
        responses = []
        for config in (ServeConfig(), ServeConfig(exec_time_scale=1.0)):
            _service, _observer, resp = _observed_run(80, config=config)
            responses.append(resp)
        a, b = responses
        assert set(a) == set(b)
        for rid in a:
            assert a[rid].latency_s == b[rid].latency_s
            assert a[rid].status == b[rid].status
            if a[rid].ok:
                assert a[rid].d.tobytes() == b[rid].d.tobytes()

    def test_exec_time_scale_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(exec_time_scale=0.0)


class TestPlumbing:
    def test_histograms_round_trip_openmetrics(self):
        from repro.obs.export import openmetrics_text, parse_openmetrics

        _service, observer, _ = _observed_run(100)
        timelines = timelines_from_observer(observer)
        breakdowns = {rid: exact_breakdown(tl) for rid, tl in timelines.items()}
        registry = component_registry(observer, breakdowns)
        snapshot = registry.snapshot()
        names = [n for n in snapshot["histograms"]
                 if n.startswith("serve.latency.component.")]
        assert names, "no per-tier component histograms recorded"
        assert any(".execution" in n for n in names)
        parsed = parse_openmetrics(openmetrics_text(snapshot))
        for name in names:
            sanitized = name.replace(".", "_")
            assert parsed["histograms"][sanitized]["count"] == (
                snapshot["histograms"][name]["count"]
            )

    def test_flight_log_reconstructs_same_breakdown(self, tmp_path):
        from repro.obs.flight import load_flight_log, validate_flight_log

        _service, observer, _ = _observed_run(100)
        timelines = timelines_from_observer(observer)
        path = tmp_path / "flight.jsonl"
        observer.recorder.dump_jsonl(path)
        records = load_flight_log(path)
        assert validate_flight_log(records) == []
        flight_timelines = timelines_from_flight(records)
        assert set(flight_timelines) == set(timelines)
        for rid, tl in timelines.items():
            from_flight = breakdown_from_flight(records, rid)
            assert from_flight is not None
            components, flight_tl = from_flight
            assert components == exact_breakdown(tl)
            assert verify_breakdown(components, flight_tl)

    def test_latency_breakdown_event_validates(self, tmp_path):
        from repro.obs.flight import load_flight_log, validate_flight_log

        _service, observer, _ = _observed_run(60)
        timelines = timelines_from_observer(observer)
        rid = next(r for r in sorted(timelines)
                   if timelines[r].status == "completed")
        tl = timelines[rid]
        components = exact_breakdown(tl)
        observer.recorder.record(
            "latency_breakdown", tl.terminal_at, request_id=rid,
            components={n: float(v) for n, v in components.items()},
            latency_s=tl.latency_s,
        )
        path = tmp_path / "flight.jsonl"
        observer.recorder.dump_jsonl(path)
        records = load_flight_log(path)
        assert validate_flight_log(records) == []
        kinds = [e["kind"] for e in records]
        assert "latency_breakdown" in kinds
        table = format_breakdown(rid, components, tl)
        assert f"request {rid}" in table and "total (exact)" in table
        assert "exact=True" in table

    def test_inflight_snapshot_live_and_drained(self):
        rng = np.random.default_rng(0)
        service = GemmService(ServeConfig())
        for _ in range(4):
            service.submit(make_request(rng))
        live = inflight_snapshot(service)
        assert live["in_flight"] > 0
        assert live["components"]["batching_window"] >= 0.0
        service.run(())
        drained = inflight_snapshot(service)
        assert drained["in_flight"] == 0
        assert drained["components"]["batching_window"] == 0.0
        assert drained["components"]["post_batch"] == 0.0

    def test_batched_at_column_lifecycle(self):
        _service, observer, _ = _observed_run(60)
        table = _service.table if hasattr(_service, "table") else None
        # after a drained run every slot is free and the stamp cleared
        assert table is not None
        assert np.all(np.isnan(table.batched_at[: table.capacity]))

    def test_brownout_transitions_logged(self):
        from repro.serve.chaos import run_scenario

        result, _observer = run_scenario("overload-brownout", seed=0,
                                         requests=150)
        assert result["brownout"]["activations"] >= 1
        assert result["brownout"]["transitions"] >= 1
