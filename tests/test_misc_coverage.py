"""Final coverage batch: edge cases and reporting paths not exercised by
the feature-focused test modules."""

import numpy as np
import pytest

from repro.apps.common import app_speedup
from repro.experiments.fig6 import run_fig6
from repro.gpu.engine import KernelLaunch, execute
from repro.gpu.isa import ExecUnit, InstructionStream, Opcode
from repro.gpu.occupancy import BlockResources
from repro.gpu.spec import TESLA_T4
from repro.gpu.timeline import render_timeline
from repro.kernels.cublas import CublasCudaFp32
from repro.kernels.egemm import EgemmTcKernel
from repro.profiling.report import format_profiling_report
from repro.profiling.workflow import PrecisionProfiler, ProfilingResult


class TestProfilingReportEdges:
    def test_report_without_samples(self):
        result = PrecisionProfiler().run(trials=5, keep_samples=0)
        text = format_profiling_report(result)
        assert "half_result" not in text
        assert "d_FLOAT" in text

    def test_empty_result_verdict(self):
        result = ProfilingResult(agreements=[])
        assert "Dekker" in result.verdict() or "no probing" in result.verdict()

    def test_keep_samples_bounded_by_trials(self):
        result = PrecisionProfiler().run(trials=2, keep_samples=5)
        assert len(result.samples) == 2


class TestEngineBreakdown:
    def test_breakdown_fields(self):
        stream = InstructionStream()
        g = stream.emit(Opcode.LDS, 10)
        stream.emit(Opcode.HMMA, 10, depends_on=(g,))
        launch = KernelLaunch(
            name="x",
            stream=stream,
            grid_blocks=4,
            resources=BlockResources(threads=128, shared_mem_bytes=1024, registers_per_thread=32),
            dram_bytes_per_block=0.0,
            useful_flops=1e6,
        )
        timing = execute(launch, TESLA_T4)
        assert timing.breakdown["tensor_busy"] > 0
        assert timing.breakdown["mem_busy"] > 0
        assert timing.breakdown["block_cycles"] >= timing.breakdown["tensor_busy"]

    def test_multi_block_residency_uses_busy_bound(self):
        """With >1 resident block, per-block service time approaches the
        busiest-unit bound (bubbles filled by co-residents)."""
        stream = InstructionStream()
        g = stream.emit(Opcode.LDG, 5)
        stream.emit(Opcode.HMMA, 5, depends_on=(g,))  # big dependency bubble
        small = BlockResources(threads=64, shared_mem_bytes=1024, registers_per_thread=32)
        launch = KernelLaunch("x", stream, TESLA_T4.num_sms * 8, small, 0.0, 1e6)
        timing = execute(launch, TESLA_T4)
        per_block = timing.cycles / launch.grid_blocks * TESLA_T4.num_sms
        from repro.gpu.scheduler import schedule

        critical_path = schedule(stream, TESLA_T4).total_cycles
        assert per_block < critical_path  # residency hid the bubble


class TestTimelineAluLane:
    def test_alu_glyph(self):
        stream = InstructionStream()
        stream.emit(Opcode.FFMA, 50)
        stream.emit(Opcode.HMMA, 50)
        out = render_timeline(stream, TESLA_T4, width=40)
        assert "#" in out  # tensor lane renders


class TestAppSpeedupDirect:
    def test_generic_composition(self):
        base, fast, s = app_speedup(
            CublasCudaFp32(), EgemmTcKernel(), (2048, 1024, 1024), non_gemm=1e-3
        )
        assert s > 1.0
        assert base.non_gemm_seconds == fast.non_gemm_seconds == 1e-3
        assert base.total_seconds > fast.total_seconds


class TestFig6Rendering:
    def test_both_timelines_render(self):
        result = run_fig6(n=256, width=50)
        for text in (result.pipelined_timeline, result.naive_timeline):
            assert "tensor" in text and "mem" in text
        assert result.pipelined_cycles < result.naive_cycles


class TestKernelEdgeDims:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (17, 33, 65), (128, 1, 8192)])
    def test_odd_dims_time_and_compute(self, dims, rng):
        m, n, k = dims
        kern = EgemmTcKernel()
        assert kern.time(m, n, k).seconds > 0
        a = rng.uniform(-1, 1, (min(m, 8), min(k, 8))).astype(np.float32)
        b = rng.uniform(-1, 1, (min(k, 8), min(n, 8))).astype(np.float32)
        assert kern.compute(a, b).shape == (a.shape[0], b.shape[1])
