"""Unit + property tests for the data-split algorithms (§3.2, Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fp.rounding import truncate_to_mantissa
from repro.splits import RoundSplit, SplitPair, TruncateSplit, round_split, truncate_split

# fp16-representable magnitudes with headroom for the low part
fp16_safe = st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False).filter(
    lambda v: v == 0 or abs(v) > 1e-3
)


class TestSplitPair:
    def test_requires_float16(self):
        with pytest.raises(TypeError):
            SplitPair(hi=np.zeros(3, dtype=np.float32), lo=np.zeros(3, dtype=np.float16))

    def test_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            SplitPair(hi=np.zeros(3, dtype=np.float16), lo=np.zeros(4, dtype=np.float16))

    def test_reconstruct_is_exact_sum(self):
        pair = SplitPair(
            hi=np.array([1.0], dtype=np.float16), lo=np.array([2**-11], dtype=np.float16)
        )
        assert float(pair.reconstruct()[0]) == 1.0 + 2**-11


class TestRoundSplit:
    def test_hi_is_round_to_nearest_half(self, rng):
        x = rng.uniform(-1, 1, 1000).astype(np.float32)
        pair = RoundSplit().split(x)
        assert np.array_equal(pair.hi, x.astype(np.float16))

    def test_lo_sign_varies_for_positive_inputs(self, rng):
        """Figure 4b: round-split residuals use the sign bit of x_lo."""
        x = rng.uniform(0.5, 1.0, 4000).astype(np.float32)
        pair = RoundSplit().split(x)
        lo = pair.lo.astype(np.float64)
        assert np.any(lo > 0) and np.any(lo < 0)

    def test_reconstruction_error_bound(self, rng):
        """21 effective bits: |x - (hi+lo)| <= ~2^-22 relative."""
        x = rng.uniform(0.5, 1.0, 10000).astype(np.float32)
        err = RoundSplit().max_reconstruction_error(x)
        assert err <= 2.0**-21  # hi in [0.5, 1]: lo quantum ~2^-22

    def test_exact_for_half_values(self, rng):
        x = rng.uniform(-1, 1, 100).astype(np.float16).astype(np.float32)
        pair = RoundSplit().split(x)
        assert np.array_equal(pair.hi.astype(np.float32), x)
        assert np.all(pair.lo == 0)

    def test_metadata(self):
        s = RoundSplit()
        assert s.name == "round"
        assert s.effective_mantissa_bits == 21

    @given(fp16_safe)
    @settings(max_examples=200)
    def test_residual_bounded_by_half_ulp_of_hi(self, value):
        """Round-split: |x - hi| <= 0.5 ulp(hi) — the property that buys
        the extra mantissa bit over truncate-split."""
        x = np.float32(value)
        pair = RoundSplit().split(np.array([x]))
        hi = float(pair.hi.astype(np.float64)[0])
        if not np.isfinite(hi) or hi == 0:
            return
        ulp_hi = float(
            np.abs(
                np.nextafter(np.float16(hi), np.float16(np.inf)).astype(np.float64)
                - np.float16(hi).astype(np.float64)
            )
        )
        assert abs(float(x) - hi) <= 0.5 * ulp_hi * (1 + 1e-6)


class TestTruncateSplit:
    def test_hi_is_chopped(self, rng):
        x = rng.uniform(-1, 1, 1000).astype(np.float32)
        pair = TruncateSplit().split(x)
        expected = truncate_to_mantissa(x.astype(np.float64), 10).astype(np.float16)
        assert np.array_equal(pair.hi, expected)

    def test_lo_nonnegative_for_positive_inputs(self, rng):
        """Figure 4a: chopping wastes x_lo's sign bit on positive data."""
        x = rng.uniform(0.25, 1.0, 4000).astype(np.float32)
        pair = TruncateSplit().split(x)
        assert np.all(pair.lo.astype(np.float64) >= 0)

    def test_metadata(self):
        s = TruncateSplit()
        assert s.name == "truncate"
        assert s.effective_mantissa_bits == 20

    def test_reconstruction_error_bound(self, rng):
        x = rng.uniform(0.5, 1.0, 10000).astype(np.float32)
        err = TruncateSplit().max_reconstruction_error(x)
        assert err <= 2.0**-20


class TestRoundVsTruncate:
    def test_round_split_statistically_tighter(self, rng):
        """The 1-extra-bit claim, measured: round-split reconstruction is
        ~2x more accurate than truncate-split on random data."""
        x = rng.uniform(-1, 1, 50000).astype(np.float32)
        r = RoundSplit().max_reconstruction_error(x)
        t = TruncateSplit().max_reconstruction_error(x)
        assert r < t
        assert t / r > 1.5  # paper's Figure 7 gap is 2.33x end to end

    @given(fp16_safe)
    @settings(max_examples=200)
    def test_round_never_worse_per_element(self, value):
        x = np.array([np.float32(value)])
        r = RoundSplit().max_reconstruction_error(x)
        t = TruncateSplit().max_reconstruction_error(x)
        assert r <= t + 1e-300

    def test_functional_wrappers(self, rng):
        x = rng.uniform(-1, 1, 16).astype(np.float32)
        assert np.array_equal(round_split(x).hi, RoundSplit().split(x).hi)
        assert np.array_equal(truncate_split(x).hi, TruncateSplit().split(x).hi)
