"""Tests for the core emulation: schemes, Algorithm 1, large-matrix GEMM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emulation.algorithm import emulate_tile, emulate_tile_wmma
from repro.emulation.gemm import (
    EmulatedGemm,
    emulated_gemm,
    reference_exact,
    reference_single,
)
from repro.emulation.schemes import DEKKER, EGEMM, HALF, MARKIDIS, SCHEMES, get_scheme
from repro.fp.error import max_error
from repro.tensorcore.mma import InternalPrecision, MmaCounter


class TestSchemes:
    def test_registry(self):
        assert set(SCHEMES) == {"egemm-tc", "markidis", "half", "dekker"}
        assert get_scheme("egemm-tc") is EGEMM

    def test_unknown_scheme(self):
        with pytest.raises(KeyError, match="unknown emulation scheme"):
            get_scheme("nope")

    def test_overheads(self):
        """The paper's 4x vs 16x compute-overhead comparison (§3.2)."""
        assert EGEMM.compute_overhead == 4
        assert MARKIDIS.compute_overhead == 4
        assert HALF.compute_overhead == 1
        assert DEKKER.compute_overhead == 16
        assert EGEMM.memory_overhead == 2  # with FRAG-managed reuse

    def test_effective_bits(self):
        assert EGEMM.effective_mantissa_bits == 21
        assert MARKIDIS.effective_mantissa_bits == 20

    def test_term_order_low_first(self, rng):
        """Algorithm 1 accumulates lo*lo, lo*hi, hi*lo, hi*hi."""
        x = rng.uniform(-1, 1, (4, 4)).astype(np.float32)
        pa, pb = EGEMM.split_operands(x, x)
        terms = EGEMM.product_terms(pa, pb)
        assert len(terms) == 4
        assert terms[0][0] is pa.lo and terms[0][1] is pb.lo
        assert terms[3][0] is pa.hi and terms[3][1] is pb.hi

    def test_half_scheme_single_term(self, rng):
        x = rng.uniform(-1, 1, (4, 4)).astype(np.float32)
        pa, pb = HALF.split_operands(x, x)
        assert len(HALF.product_terms(pa, pb)) == 1
        assert np.all(pa.lo == 0)


class TestEmulateTile:
    def test_wmma_path_bitwise_equals_fast_path(self, tile_16):
        a, b, c = tile_16
        assert np.array_equal(emulate_tile(a, b, c), emulate_tile_wmma(a, b, c))

    def test_wmma_path_rejects_oversized(self, rng):
        a = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        with pytest.raises(ValueError, match="primitive shape"):
            emulate_tile_wmma(a, a)

    def test_counter_counts_four_calls(self, tile_16):
        a, b, _ = tile_16
        counter = MmaCounter()
        emulate_tile(a, b, counter=counter)
        assert counter.calls == 4

    def test_extended_precision_error_bound(self, tile_16):
        a, b, c = tile_16
        d = emulate_tile(a, b, c)
        err = max_error(d, reference_exact(a, b, c))
        # 21-bit inputs, 16-term dots of values in [-1, 1].
        assert err < 1e-4

    def test_default_c_is_zero(self, tile_16):
        a, b, _ = tile_16
        assert np.array_equal(emulate_tile(a, b), emulate_tile(a, b, np.zeros((16, 16), np.float32)))


class TestEmulatedGemm:
    def test_error_ordering_across_schemes(self):
        """egemm <= markidis << half, the Figure 7 ordering.

        Max error at a single size can tie on the fp32 ulp grid, so the
        round-vs-truncate comparison averages over several matrices.
        """
        sums = {name: 0.0 for name in ("egemm-tc", "markidis", "half")}
        for seed in range(5):
            rng = np.random.default_rng(seed)
            n = 96
            a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
            b = rng.uniform(-1, 1, (n, n)).astype(np.float32)
            ref = reference_single(a, b)
            for name in sums:
                sums[name] += max_error(emulated_gemm(a, b, scheme=get_scheme(name)), ref)
        assert sums["egemm-tc"] < sums["markidis"] < sums["half"]
        assert sums["half"] > 100 * sums["egemm-tc"]

    def test_egemm_vs_exact_tight(self, small_matrices):
        a, b, c = small_matrices
        d = emulated_gemm(a, b, c)
        assert max_error(d, reference_exact(a, b, c)) < 5e-5

    def test_c_accumulation(self, small_matrices):
        a, b, c = small_matrices
        with_c = emulated_gemm(a, b, c)
        without = emulated_gemm(a, b)
        assert np.allclose(with_c - without, c, atol=1e-5)

    def test_rejects_bad_shapes(self, rng):
        g = EmulatedGemm()
        with pytest.raises(ValueError):
            g(np.zeros((4, 5), np.float32), np.zeros((6, 4), np.float32))
        with pytest.raises(ValueError):
            g(np.zeros(4, np.float32), np.zeros((4, 4), np.float32))
        with pytest.raises(ValueError):
            g(np.zeros((4, 4), np.float32), np.zeros((4, 4), np.float32), np.zeros((2, 2), np.float32))

    def test_rejects_bad_tk(self):
        with pytest.raises(ValueError):
            EmulatedGemm(tk=0)

    def test_stats(self, small_matrices):
        a, b, _ = small_matrices
        d, stats = EmulatedGemm(tk=16).run(a, b)
        assert stats.m == 48 and stats.n == 40 and stats.k == 32
        assert stats.k_chunks == 2
        assert stats.partial_products == 8  # 2 chunks x 4 terms
        assert stats.flops == 2 * 48 * 40 * 32
        assert stats.mma_calls == 3 * 3 * 2 * 4  # ceil(48/16)*ceil(40/16)*ceil(32/16)*4

    def test_k_not_divisible_by_tk(self, rng):
        a = rng.uniform(-1, 1, (8, 37)).astype(np.float32)
        b = rng.uniform(-1, 1, (37, 8)).astype(np.float32)
        d = emulated_gemm(a, b, tk=16)
        assert max_error(d, reference_exact(a, b)) < 5e-5

    def test_tk_variation_changes_little(self, small_matrices):
        a, b, _ = small_matrices
        d16 = emulated_gemm(a, b, tk=16)
        d8 = emulated_gemm(a, b, tk=8)
        # Different rounding cadence, same extended precision class.
        assert max_error(d16, d8) < 1e-5

    def test_counter_accumulates(self, small_matrices):
        a, b, _ = small_matrices
        g = EmulatedGemm()
        g(a, b)
        g(a, b)
        assert g.counter.calls == 2 * 3 * 3 * 2 * 4

    def test_generic_precision_path(self, small_matrices):
        """Probing-model path routes through the mma primitive."""
        a, b, _ = small_matrices
        g = EmulatedGemm(scheme=HALF, precision=InternalPrecision.HALF)
        d = g(a, b)
        err_half_internal = max_error(d, reference_exact(a, b))
        err_tc = max_error(EmulatedGemm(scheme=HALF)(a, b), reference_exact(a, b))
        assert err_half_internal > err_tc

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_shapes(self, m, n, k):
        rng = np.random.default_rng(m * 100 + n * 10 + k)
        a = rng.uniform(-1, 1, (m, k)).astype(np.float32)
        b = rng.uniform(-1, 1, (k, n)).astype(np.float32)
        d = emulated_gemm(a, b)
        assert d.shape == (m, n)
        assert max_error(d, reference_exact(a, b)) < 1e-4


class TestReferences:
    def test_reference_single_is_fp32(self, small_matrices):
        a, b, c = small_matrices
        assert reference_single(a, b, c).dtype == np.float32

    def test_reference_exact_is_fp64(self, small_matrices):
        a, b, c = small_matrices
        assert reference_exact(a, b, c).dtype == np.float64

    def test_references_agree_loosely(self, small_matrices):
        a, b, c = small_matrices
        assert max_error(reference_single(a, b, c), reference_exact(a, b, c)) < 1e-4
