"""Tests for the extension features: three-term splits, the 9-call scheme,
the TF32 second core, the Dekker timed kernel, the register-policy and
spill model, and the timeline renderer."""

import numpy as np
import pytest

from repro.emulation.extended import EGEMM3, ThreeTermScheme
from repro.emulation.gemm import EmulatedGemm, reference_exact
from repro.fp.error import max_error
from repro.gpu.isa import InstructionStream, Opcode
from repro.gpu.spec import TESLA_T4
from repro.gpu.timeline import render_timeline, timeline_segments
from repro.kernels.cublas import CublasCudaFp32
from repro.kernels.dekker import DekkerCudaKernel
from repro.kernels.egemm import EgemmTcKernel
from repro.splits.three_term import ThreeTermSplit, three_term_split
from repro.tensorcore.tf32 import (
    Tf32RoundSplit,
    emulated_gemm_tf32,
    tf32_mma,
    to_tf32,
)


class TestThreeTermSplit:
    def test_reconstruction_floored_at_fp16_subnormal(self, rng):
        """Residual bounded by fp16's smallest subnormal (2^-24): the
        range limitation documented in the module."""
        x = rng.uniform(-1.0, 1.0, 5000).astype(np.float32)
        assert ThreeTermSplit().max_reconstruction_error3(x) <= 2.0**-24

    def test_exact_when_third_residual_representable(self, rng):
        """For operands in [0.5, 1) the third residual stays above the
        subnormal floor and reconstruction is exact."""
        x = rng.uniform(0.5, 1.0, 5000).astype(np.float32)
        assert ThreeTermSplit().max_reconstruction_error3(x) == 0.0

    def test_strictly_tighter_than_two_term(self, rng):
        from repro.splits.round import RoundSplit

        x = rng.uniform(-1.0, 1.0, 20000).astype(np.float32)
        three = ThreeTermSplit().max_reconstruction_error3(x)
        x64 = x.astype(np.float64)
        pair = RoundSplit().split(x)
        two = float(np.max(np.abs(x64 - pair.reconstruct())))
        # On unit-scaled data the subnormal floor caps the gain at ~1 bit.
        assert three <= two / 1.5

    def test_parts_are_half(self, rng):
        t = three_term_split(rng.uniform(-1, 1, 16).astype(np.float32))
        for part in t.terms():
            assert part.dtype == np.float16

    def test_two_term_view_drops_lo(self, rng):
        x = rng.uniform(-1, 1, 100).astype(np.float32)
        pair = ThreeTermSplit().split(x)
        triple = ThreeTermSplit().split3(x)
        assert np.array_equal(pair.hi, triple.hi)
        assert np.array_equal(pair.lo, triple.mid)

    def test_shape_and_dtype_validation(self):
        from repro.splits.three_term import SplitTriple

        h = np.zeros(3, dtype=np.float16)
        with pytest.raises(TypeError):
            SplitTriple(hi=h.astype(np.float32), mid=h, lo=h)
        with pytest.raises(ValueError):
            SplitTriple(hi=h, mid=np.zeros(4, dtype=np.float16), lo=h)


class TestThreeTermScheme:
    def test_metadata(self):
        assert EGEMM3.compute_overhead == 9
        assert EGEMM3.effective_mantissa_bits == 23

    def test_nine_ordered_terms(self, rng):
        x = rng.uniform(-1, 1, (8, 8)).astype(np.float32)
        pa, pb = EGEMM3.split_operands(x, x)
        terms = EGEMM3.product_terms(pa, pb)
        assert len(terms) == 9
        assert terms[0][0] is pa.lo and terms[-1][0] is pa.hi

    def test_split_error_far_below_two_term(self, rng):
        """At the split level the 9-term design is near-exact (floored at
        fp16's subnormal quantum); end-to-end it saturates at the
        accumulator's fp32 rounding (see ablation A1)."""
        from repro.emulation.schemes import EGEMM

        n = 64
        a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        b = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        exact = reference_exact(a, b)
        pa3, pb3 = EGEMM3.split_operands(a, b)
        err3 = max_error(pa3.reconstruct() @ pb3.reconstruct(), exact)
        pa2, pb2 = EGEMM.split_operands(a, b)
        err2 = max_error(pa2.reconstruct() @ pb2.reconstruct(), exact)
        assert err3 < err2 / 1.5

    def test_end_to_end_not_worse_than_egemm(self, rng):
        from repro.emulation.schemes import EGEMM

        n = 96
        errs = {"3": 0.0, "2": 0.0}
        for seed in range(3):
            r = np.random.default_rng(seed)
            a = r.uniform(-1, 1, (n, n)).astype(np.float32)
            b = r.uniform(-1, 1, (n, n)).astype(np.float32)
            exact = reference_exact(a, b)
            errs["3"] += max_error(EmulatedGemm(scheme=EGEMM3)(a, b), exact)
            errs["2"] += max_error(EmulatedGemm(scheme=EGEMM)(a, b), exact)
        # End to end the 9-call design buys nothing: the accumulator's
        # fp32 rounding dominates and the extra 5 roundings per chunk
        # offset the split gain — why the paper's 4-call point is the
        # sweet spot (ablation A1 quantifies the throughput cost too).
        assert errs["3"] <= errs["2"] * 1.3


class TestTf32Core:
    def test_to_tf32_grid(self, rng):
        x = rng.uniform(0.5, 2.0, 1000).astype(np.float32)
        t = to_tf32(x)
        # 10 stored mantissa bits -> quantization error <= 2^-11 * scale
        assert np.max(np.abs(t - x)) <= 2.0**-10
        assert np.array_equal(to_tf32(t), t)  # idempotent

    def test_tf32_exponent_range_preserved(self):
        """No fp16-style overflow: 1e6 survives the TF32 grid."""
        assert np.isfinite(to_tf32(np.array([1e6], dtype=np.float32)))[0]

    def test_mma_validation(self, rng):
        with pytest.raises(ValueError):
            tf32_mma(np.zeros((4, 3), np.float32), np.zeros((4, 4), np.float32))

    def test_mma_accumulates_c(self, rng):
        a = rng.uniform(0, 1, (8, 8)).astype(np.float32)
        b = rng.uniform(0, 1, (8, 8)).astype(np.float32)
        c = rng.uniform(0, 1, (8, 8)).astype(np.float32)
        assert np.allclose(tf32_mma(a, b, c) - tf32_mma(a, b), c, atol=1e-5)

    def test_split_covers_22_bits(self, rng):
        x = rng.uniform(0.5, 1.0, 5000).astype(np.float32)
        hi, lo = Tf32RoundSplit().split_arrays(x)
        err = np.max(np.abs(x.astype(np.float64) - (hi.astype(np.float64) + lo.astype(np.float64))))
        assert err <= 2.0**-22

    def test_emulation_beats_plain_tf32(self, rng):
        n = 64
        a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        b = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        exact = reference_exact(a, b)
        emu = max_error(emulated_gemm_tf32(a, b), exact)
        plain = max_error(tf32_mma(a, b), exact)
        assert plain > 50 * emu

    def test_emulation_c_and_shapes(self, rng):
        a = rng.uniform(-1, 1, (8, 24)).astype(np.float32)
        b = rng.uniform(-1, 1, (24, 8)).astype(np.float32)
        c = rng.uniform(-1, 1, (8, 8)).astype(np.float32)
        d = emulated_gemm_tf32(a, b, c)
        assert max_error(d, reference_exact(a, b, c)) < 1e-5
        with pytest.raises(ValueError):
            emulated_gemm_tf32(a, a)


class TestDekkerKernel:
    def test_functional_is_dekker(self, rng):
        a = rng.uniform(-1, 1, (8, 16)).astype(np.float32)
        b = rng.uniform(-1, 1, (16, 8)).astype(np.float32)
        from repro.splits.dekker import dekker_gemm

        assert np.array_equal(DekkerCudaKernel().compute(a, b), dekker_gemm(a, b))

    def test_slower_than_fp32_baseline(self):
        """The paper's §1 argument: 16x overhead makes Dekker emulation
        inappropriate — slower than just using fp32 CUDA cores."""
        n = 4096
        dekker = DekkerCudaKernel().tflops(n, n, n)
        fp32 = CublasCudaFp32().tflops(n, n, n)
        assert dekker < fp32
        egemm = EgemmTcKernel().tflops(n, n, n)
        assert egemm > 8 * dekker

    def test_registry_entry(self):
        from repro.kernels import get_kernel

        k = get_kernel("dekker-cuda-half")
        assert k.info.source == "[7]"


class TestRegisterPolicyKernel:
    def test_naive_policy_slower(self):
        """A3: spills round-trip through local memory every k-step."""
        n = 8192
        reuse = EgemmTcKernel(register_policy="stage-reuse").tflops(n, n, n)
        naive = EgemmTcKernel(register_policy="naive").tflops(n, n, n)
        assert reuse > 1.2 * naive

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            EgemmTcKernel(register_policy="magic").time(1024, 1024, 1024)


class TestTimeline:
    def _stream(self):
        s = InstructionStream()
        g0 = s.emit(Opcode.LDG, 8, label="LDG")
        g1 = s.emit(Opcode.STS, 8, depends_on=(g0,), label="STS")
        s.emit(Opcode.HMMA, 32, depends_on=(g1,), label="HMMA")
        return s

    def test_segments_ordering(self):
        segs = timeline_segments(self._stream(), TESLA_T4)
        assert len(segs) == 3
        assert segs[0].start <= segs[1].start <= segs[2].start
        assert all(s.end > s.start for s in segs)

    def test_render_shape(self):
        out = render_timeline(self._stream(), TESLA_T4, width=60)
        lines = out.splitlines()
        assert any(line.startswith("tensor") for line in lines)
        assert any(line.startswith("   mem") for line in lines)
        assert "#" in out and "M" in out

    def test_empty_stream(self):
        assert "(empty stream)" in render_timeline(InstructionStream(), TESLA_T4)

    def test_crop(self):
        out = render_timeline(self._stream(), TESLA_T4, width=40, max_cycles=10.0)
        assert "10" in out.splitlines()[0]


class TestCli:
    def test_main_dispatch(self, capsys):
        from repro.__main__ import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_unknown_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["nope"]) == 2

    def test_help(self, capsys):
        from repro.__main__ import main

        assert main(["--help"]) == 0
