"""Tests for error decomposition, the SASS parser, and the report generator."""

import numpy as np
import pytest

from repro.emulation.schemes import EGEMM, MARKIDIS
from repro.fp.analysis import ErrorDecomposition, decompose_emulation_error
from repro.gpu.assembler import SassParseError, parse
from repro.gpu.sass import SassInstr, validate
from repro.tensorize.codegen import generate_iteration_sass


class TestErrorDecomposition:
    @pytest.fixture(scope="class")
    def decomp(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (128, 128)).astype(np.float32)
        b = rng.uniform(-1, 1, (128, 128)).astype(np.float32)
        return {
            "egemm": decompose_emulation_error(a, b, EGEMM),
            "markidis": decompose_emulation_error(a, b, MARKIDIS),
        }

    def test_components_positive(self, decomp):
        d = decomp["egemm"]
        for v in (d.split_residual, d.accumulation, d.reference, d.total_vs_single):
            assert v > 0

    def test_split_gap_between_schemes(self, decomp):
        """The Figure 4 effect lives in the split component: truncate's
        residual is ~2-3x round-split's."""
        ratio = decomp["markidis"].split_residual / decomp["egemm"].split_residual
        assert ratio > 1.8

    def test_common_mode_reference_identical(self, decomp):
        """The reference error is scheme-independent (common mode)."""
        assert decomp["egemm"].reference == decomp["markidis"].reference

    def test_dilution_mechanism(self, decomp):
        """EXPERIMENTS.md's explanation: vs-single totals are dominated by
        the common components, so they sit much closer together than the
        split residuals."""
        e, m = decomp["egemm"], decomp["markidis"]
        total_ratio = m.total_vs_single / e.total_vs_single
        split_ratio = m.split_residual / e.split_residual
        assert total_ratio < split_ratio

    def test_total_bounded_by_component_sum(self, decomp):
        d = decomp["egemm"]
        assert d.total_vs_exact <= d.split_residual + d.accumulation + 1e-12

    def test_summary_format(self, decomp):
        s = decomp["egemm"].summary()
        assert "egemm-tc" in s and "dominant" in s

    def test_dominant_source(self):
        d = ErrorDecomposition("x", split_residual=3.0, accumulation=1.0, reference=2.0, total_vs_exact=3.5, total_vs_single=4.0)
        assert d.dominant_source == "split"


class TestSassParser:
    def test_round_trip_generated_listing(self):
        original = generate_iteration_sass()
        text = original.render()
        parsed = parse(text, live_in=original.live_in)
        assert len(parsed) == len(original)
        assert parsed.render().splitlines()[1:] == text.splitlines()[1:]
        validate(parsed, 256)

    def test_round_trip_naive_listing(self):
        original = generate_iteration_sass(latency_hiding=False)
        parsed = parse(original.render(), live_in=original.live_in)
        assert [i.opcode for i in parsed] == [i.opcode for i in original]
        assert [i.control_word for i in parsed] == [i.control_word for i in original]

    def test_comments_and_blanks_skipped(self):
        text = "// header\n\n[B------:R-:W-:-:S01]  MOV R0, RZ ;\n"
        listing = parse(text)
        assert len(listing) == 1
        assert listing.instrs[0].opcode == "MOV"

    def test_malformed_line_rejected(self):
        with pytest.raises(SassParseError, match="line 1"):
            parse("HMMA without control word ;")

    def test_control_word_fields_recovered(self):
        instr = SassInstr(opcode="LDG.E.128", stall=3, yield_=True, wrtdb=2, readb=4, watdb=0b101)
        line = instr.render()
        parsed = parse(line).instrs[0]
        assert parsed.stall == 3
        assert parsed.yield_
        assert parsed.wrtdb == 2
        assert parsed.readb == 4
        assert parsed.watdb == 0b101


class TestReport:
    def test_collect_and_render(self, tmp_path):
        from repro.experiments.report import collect_rows, generate_report

        rows = collect_rows(profiling_trials=60)
        assert len(rows) >= 15
        reproduced = sum(r.ok for r in rows)
        assert reproduced == len(rows), [r.claim for r in rows if not r.ok]

        out = tmp_path / "report.md"
        text = generate_report(str(out), profiling_trials=60)
        assert out.exists()
        assert "| Claim |" in text
        assert "DEVIATION" not in text
