"""Tests for the generalized precision-profiling workflow (Figure 2a/3)."""

import numpy as np
import pytest

from repro.profiling.generator import UNIT_POSITIVE, UNIT_SIGNED, InputDistribution, TileGenerator
from repro.profiling.report import format_profiling_report
from repro.profiling.workflow import (
    EXTENDED_PRECISION_BITS,
    PrecisionProfiler,
    ProfilingResult,
)
from repro.tensorcore.mma import InternalPrecision, mma


class TestGenerator:
    def test_deterministic_with_seed(self):
        g1, g2 = TileGenerator(seed=7), TileGenerator(seed=7)
        a1, b1, _ = g1.half_inputs()
        a2, b2, _ = g2.half_inputs()
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)

    def test_different_seeds_differ(self):
        a1, _, _ = TileGenerator(seed=1).half_inputs()
        a2, _, _ = TileGenerator(seed=2).half_inputs()
        assert not np.array_equal(a1, a2)

    def test_half_dtype_and_shape(self):
        gen = TileGenerator(m=16, n=8, k=8)
        a, b, c = gen.half_inputs(with_c=True)
        assert a.shape == (16, 8) and a.dtype == np.float16
        assert b.shape == (8, 8) and b.dtype == np.float16
        assert c.shape == (16, 8) and c.dtype == np.float32

    def test_c_none_by_default(self):
        _, _, c = TileGenerator().half_inputs()
        assert c is None

    def test_distributions(self):
        rng = np.random.default_rng(0)
        pos = UNIT_POSITIVE.sample(rng, (1000,))
        assert pos.min() >= 0 and pos.max() < 1
        sgn = UNIT_SIGNED.sample(rng, (1000,))
        assert sgn.min() < 0 < sgn.max()

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            TileGenerator(m=0)

    def test_single_inputs(self):
        a, b = TileGenerator().single_inputs()
        assert a.dtype == np.float32 and b.dtype == np.float32


class TestProfiler:
    @pytest.fixture(scope="class")
    def result(self) -> ProfilingResult:
        return PrecisionProfiler().run(trials=300, generator=TileGenerator(seed=0))

    def test_float_probe_meets_extended_precision(self, result):
        """The §3.2 claim: d_FLOAT agrees to >= 21 mantissa bits always."""
        float_agree = next(a for a in result.agreements if a.probe.name == "d_FLOAT")
        assert float_agree.min_bits >= EXTENDED_PRECISION_BITS
        assert float_agree.meets_extended_precision

    def test_half_probe_rejected(self, result):
        half_agree = next(a for a in result.agreements if a.probe.name == "d_HALF")
        assert half_agree.min_bits < EXTENDED_PRECISION_BITS
        assert not half_agree.meets_extended_precision
        assert half_agree.mean_bits < 15

    def test_verdict_names_extended_precision(self, result):
        verdict = result.verdict()
        assert "extended precision" in verdict
        assert "d_FLOAT" in verdict

    def test_best_probe_is_not_half(self, result):
        assert result.best_probe().probe.name != "d_HALF"

    def test_samples_kept(self, result):
        assert len(result.samples) == 3

    def test_report_contains_appendix_lines(self, result):
        report = format_profiling_report(result)
        assert "half_result:" in report
        assert "Tensor Core :" in report
        assert "d_FLOAT" in report

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            PrecisionProfiler().run(trials=0)


class TestWorkflowGenerality:
    def test_custom_hardware_half_core(self):
        """Profiling a (hypothetical) half-internal core picks d_HALF —
        the workflow discriminates, it does not assume."""
        half_hw = lambda a, b, c=None: mma(a, b, c, precision=InternalPrecision.HALF)
        result = PrecisionProfiler(hardware=half_hw).run(
            trials=50, generator=TileGenerator(seed=3)
        )
        best = result.best_probe()
        assert best.probe.name == "d_HALF"
        assert best.min_bits == 24  # bitwise identical to itself
        # And the verdict warns that extended precision is unavailable...
        # unless d_HALF itself matches (it does, bitwise) — the workflow
        # reports *which* primitive matched, which is what matters.
        assert "d_HALF" in result.verdict() or "Dekker" in result.verdict()

    def test_with_c_accumulator(self):
        result = PrecisionProfiler().run(
            trials=30, generator=TileGenerator(seed=5), with_c=True
        )
        float_agree = next(a for a in result.agreements if a.probe.name == "d_FLOAT")
        assert float_agree.min_bits >= 20  # C adds one more rounding site
