"""Unit tests for repro.fp.bits — bit-level float views."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fp.bits import (
    bits_to_float,
    compose,
    decompose,
    float_to_bits,
    hex_bits,
    is_negative_zero,
    mantissa_bits_agreement,
    next_after_zero,
    ulp,
    ulp_distance,
)


class TestFloatToBits:
    def test_known_fp32_patterns(self):
        assert int(float_to_bits(np.float32(1.0))) == 0x3F800000
        assert int(float_to_bits(np.float32(-2.0))) == 0xC0000000
        assert int(float_to_bits(np.float32(0.0))) == 0

    def test_known_fp16_patterns(self):
        assert int(float_to_bits(np.float16(1.0))) == 0x3C00
        assert int(float_to_bits(np.float16(-1.0))) == 0xBC00

    def test_round_trip_fp32(self, rng):
        x = rng.normal(0, 10, 100).astype(np.float32)
        assert np.array_equal(bits_to_float(float_to_bits(x), np.float32), x)

    def test_round_trip_fp16(self, rng):
        x = rng.normal(0, 10, 100).astype(np.float16)
        assert np.array_equal(bits_to_float(float_to_bits(x), np.float16), x)

    def test_round_trip_fp64(self, rng):
        x = rng.normal(0, 10, 100)
        assert np.array_equal(bits_to_float(float_to_bits(x), np.float64), x)

    def test_view_is_zero_copy(self):
        x = np.ones(4, dtype=np.float32)
        bits = float_to_bits(x)
        assert bits.base is x or bits.base is x.base

    def test_rejects_integer_input(self):
        with pytest.raises(TypeError):
            float_to_bits(np.arange(4))

    def test_bits_to_float_rejects_bad_dtype(self):
        with pytest.raises(TypeError):
            bits_to_float(np.zeros(2, dtype=np.uint32), np.int32)


class TestDecomposeCompose:
    def test_decompose_one(self):
        sign, exp, man = decompose(np.float32(1.0))
        assert (int(sign), int(exp), int(man)) == (0, 127, 0)

    def test_decompose_negative_half_precision(self):
        sign, exp, man = decompose(np.float16(-1.5))
        assert int(sign) == 1
        assert int(exp) == 15
        assert int(man) == 0x200  # 0.5 in the 10-bit fraction

    def test_compose_inverse_of_decompose(self, rng):
        x = rng.normal(0, 100, 50).astype(np.float32)
        assert np.array_equal(compose(*decompose(x), dtype=np.float32), x)

    def test_compose_inverse_fp16(self, rng):
        x = rng.normal(0, 10, 50).astype(np.float16)
        assert np.array_equal(compose(*decompose(x), dtype=np.float16), x)

    def test_compose_field_overflow_raises(self):
        with pytest.raises(ValueError):
            compose(0, 1 << 9, 0, dtype=np.float32)
        with pytest.raises(ValueError):
            compose(0, 0, 1 << 24, dtype=np.float32)


class TestHexBits:
    def test_matches_appendix_format(self):
        # 32-bit values render as 8 hex digits with the 0x prefix.
        assert hex_bits(1.0) == "0x3f800000"
        assert len(hex_bits(934.40637207)) == 10

    def test_fp16_width(self):
        assert hex_bits(1.0, np.float16) == "0x3c00"


class TestUlpDistance:
    def test_identical_is_zero(self):
        x = np.float32(3.14159)
        assert int(ulp_distance(x, x)) == 0

    def test_adjacent_is_one(self):
        x = np.float32(1.0)
        y = np.nextafter(x, np.float32(2.0))
        assert int(ulp_distance(x, y)) == 1

    def test_crosses_exponent_boundary(self):
        below = np.nextafter(np.float32(2.0), np.float32(1.0))
        assert int(ulp_distance(below, np.float32(2.0))) == 1

    def test_signed_zero_pair(self):
        assert int(ulp_distance(np.float32(0.0), np.float32(-0.0))) == 0

    def test_spans_zero(self):
        tiny_pos = np.nextafter(np.float32(0.0), np.float32(1.0))
        tiny_neg = np.nextafter(np.float32(0.0), np.float32(-1.0))
        assert int(ulp_distance(tiny_pos, tiny_neg)) == 2


class TestMantissaBitsAgreement:
    def test_identical_gives_24(self):
        assert int(mantissa_bits_agreement(1.5, 1.5)) == 24

    def test_one_ulp_gives_23(self):
        x = np.float32(1.0)
        y = np.nextafter(x, np.float32(2.0))
        assert int(mantissa_bits_agreement(x, y)) == 23

    def test_carry_boundary_not_over_penalized(self):
        # 1.9999999 vs 2.0: adjacent values whose mantissa fields XOR
        # almost everywhere — the agreement must still be 23.
        below = np.nextafter(np.float32(2.0), np.float32(1.0))
        assert int(mantissa_bits_agreement(below, np.float32(2.0))) == 23

    def test_half_rounding_scale(self):
        # fp16 rounding of a value near 1 perturbs ~2^-11 -> ~10-12 bits.
        x = np.float32(1.0003)  # not on the fp16 grid
        y = np.float32(np.float16(x))
        bits = int(mantissa_bits_agreement(x, y))
        assert 9 <= bits <= 14

    def test_vectorized(self, rng):
        x = rng.uniform(1, 2, 100).astype(np.float32)
        out = mantissa_bits_agreement(x, x)
        assert out.shape == (100,)
        assert np.all(out == 24)

    @given(st.floats(min_value=1e-3, max_value=1e3, allow_nan=False), st.integers(0, 22))
    def test_agreement_monotone_in_perturbation(self, value, shift):
        """Perturbing a value by 2^shift ulps leaves ~23-shift bits."""
        x = np.float32(value)
        bits_pattern = float_to_bits(x).astype(np.int64) + (1 << shift)
        y = bits_to_float(bits_pattern.astype(np.uint32), np.float32)
        agree = int(mantissa_bits_agreement(x, y))
        assert agree == max(0, 23 - shift)


class TestUlpHelpers:
    def test_ulp_of_one(self):
        assert float(ulp(1.0, np.float32)) == pytest.approx(2.0**-23)

    def test_ulp_fp16(self):
        assert float(ulp(1.0, np.float16)) == pytest.approx(2.0**-10)

    def test_next_after_zero_fp16(self):
        assert next_after_zero(np.float16) == pytest.approx(2.0**-24)

    def test_is_negative_zero(self):
        x = np.array([0.0, -0.0, 1.0, -1.0], dtype=np.float32)
        assert list(is_negative_zero(x)) == [False, True, False, False]
