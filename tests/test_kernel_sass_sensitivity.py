"""Tests for the full-kernel SASS generator and the sensitivity study."""

import pytest

from repro.experiments.sensitivity import run_sensitivity
from repro.gpu.arch import TURING, VOLTA, UnsupportedArchitectureError, check_listing
from repro.gpu.sass import validate
from repro.tensorize.codegen import build_register_map, generate_kernel_sass
from repro.tensorize.tiling import T4_TILING


class TestFullKernelSass:
    @pytest.fixture(scope="class", params=[True, False], ids=["pipelined", "naive"])
    def kernel(self, request):
        return generate_kernel_sass(latency_hiding=request.param)

    def test_validates_from_empty_live_in(self, kernel):
        """Unlike the iteration body, the full kernel defines everything
        itself — def-before-use holds with no live-in registers."""
        assert kernel.live_in == frozenset()
        validate(kernel, max_registers=256)

    def test_stage_structure(self, kernel):
        ops = [i.opcode for i in kernel]
        assert ops[0] == "S2R"  # context stage first
        assert ops[-1] == "EXIT"  # epilogue last
        assert "BAR.SYNC" in ops
        assert any(o == "BRA" for o in ops)  # loop back edge

    def test_c_load_and_store_counts_match(self, kernel):
        regmap = build_register_map(T4_TILING)
        assert kernel.count("STG") == regmap.c_count // 4
        # C loads + cold-start loads + one body's prefetch loads
        assert kernel.count("LDG") >= regmap.c_count // 4

    def test_register_ceiling(self, kernel):
        assert kernel.max_register() < 232

    def test_loop_control_uses_predicate(self, kernel):
        bra = next(i for i in kernel if i.opcode == "BRA")
        assert "@P0" in bra.operands

    def test_architecture_gating_applies(self, kernel):
        check_listing(kernel, TURING)
        with pytest.raises(UnsupportedArchitectureError):
            check_listing(kernel, VOLTA)

    def test_size_independent_length(self):
        short = generate_kernel_sass(k=128)
        long = generate_kernel_sass(k=16384)
        assert len(short) == len(long)  # loop, not unrolled
        # ... but the trip count differs
        isetp_s = next(i for i in short if i.opcode.startswith("ISETP"))
        isetp_l = next(i for i in long if i.opcode.startswith("ISETP"))
        assert isetp_s.operands != isetp_l.operands


class TestSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return run_sensitivity(perturbation=0.2, n=4096)

    def test_ordering_robust_everywhere(self, points):
        """EGEMM > TC-Emulation > FP32 > SDK under every ±20% perturbation."""
        assert all(p.ordering_holds for p in points)

    def test_ratios_stay_in_class(self, points):
        for p in points:
            assert 2.0 < p.speedup_vs_fp32 < 5.0
            assert 1.05 < p.speedup_vs_emulation < 2.0
            assert 1.05 < p.latency_hiding < 1.5

    def test_first_point_is_fitted(self, points):
        assert points[0].speedup_vs_fp32 == pytest.approx(3.0, rel=0.15)

    def test_seven_points(self, points):
        assert len(points) == 7
