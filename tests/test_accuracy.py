"""Accuracy observability: shadow sampling, bound tightness, exemplars.

Covers the acceptance contract of ``repro.obs.accuracy`` and the
exporter plumbing it rides on:

* deterministic RNG-free sampling (a seeded request-id hash) and the
  byte-identity guarantee — a seeded load test produces an identical
  SLO report and flight-recorder stream with sampling on or off;
* the hard invariant ``observed <= certified`` as a Hypothesis property
  over every serving-menu kernel × random shapes/scales, including the
  out-of-fp16-range operands that force the escalation path;
* a violated certificate raises the typed :class:`BoundViolationError`,
  lands a ``bound_violation`` flight event, and burns the tier budget;
* histogram exemplar retention (new-max-only), the OpenMetrics text
  round-trip (under the munged names the format forces), and the fleet
  counter tracks' Chrome-trace validity;
* report assembly + schema validation accept/reject.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fp.error import observed_relative_error
from repro.obs.accuracy import (
    AccuracySampler,
    BoundViolationError,
    _certified_bound,
    _draw_operands,
    _sample_hash,
    _tier_label,
    build_accuracy_report,
    sweep_menu,
    validate_accuracy_report,
)
from repro.obs.export import (
    counter_event,
    openmetrics_text,
    parse_openmetrics,
    validate_chrome_trace,
)
from repro.obs.flight import FlightRecorder, load_flight_log, validate_flight_log
from repro.obs.metrics import Histogram
from repro.obs.serving import ServeObserver
from repro.serve.api import GemmRequest, GemmResponse, RequestStatus
from repro.serve.loadgen import run_load_test
from repro.serve.router import DEFAULT_MENU


# ---------------------------------------------------------------------------
# deterministic sampling
# ---------------------------------------------------------------------------


class TestSampling:
    def test_hash_stable_unit_interval_roughly_uniform(self):
        values = [_sample_hash(i, seed=0) for i in range(4000)]
        assert values == [_sample_hash(i, seed=0) for i in range(4000)]
        assert all(0.0 <= v < 1.0 for v in values)
        frac = sum(v < 0.25 for v in values) / len(values)
        assert 0.20 < frac < 0.30

    def test_seed_decouples_sample_set_from_workload(self):
        picks_a = {i for i in range(500) if AccuracySampler(rate=0.5, seed=0).wants(i)}
        picks_b = {i for i in range(500) if AccuracySampler(rate=0.5, seed=1).wants(i)}
        assert picks_a != picks_b
        assert 150 < len(picks_a) < 350  # rate 0.5, not degenerate

    def test_rate_extremes(self):
        assert all(AccuracySampler(rate=1.0).wants(i) for i in range(100))
        assert not any(AccuracySampler(rate=0.0).wants(i) for i in range(100))
        with pytest.raises(ValueError):
            AccuracySampler(rate=1.5)

    def test_capture_guards(self):
        sampler = AccuracySampler(rate=1.0, capture_limit=2)
        request = _completed(request_id=1)[0]
        expired = GemmResponse(request_id=1, status=RequestStatus.EXPIRED)
        assert not sampler.capture(0.0, request, expired)
        for rid in (1, 2, 3):
            req, resp = _completed(request_id=rid)
            sampler.capture(0.0, req, resp)
        assert sampler.sampled == 2
        assert sampler.dropped == 1

    def test_tier_labels(self):
        assert _tier_label(1e-2) == "slo_1e-02"
        assert _tier_label(3e-4) == "slo_1e-04"
        assert _tier_label(float("nan")) == "slo_1e+00"
        assert _tier_label(0.0) == "slo_1e+00"


# ---------------------------------------------------------------------------
# verification: tightness, budgets, and the hard invariant
# ---------------------------------------------------------------------------


def _completed(
    request_id: int = 7, k: int = 16, slo: float = 1e-2, perturb: float = 0.0
) -> tuple[GemmRequest, GemmResponse]:
    """A completed fp32-exact response with a generous certificate."""
    rng = np.random.default_rng(request_id)
    a = rng.uniform(-1, 1, (4, k)).astype(np.float32)
    b = rng.uniform(-1, 1, (k, 4)).astype(np.float32)
    d = (a.astype(np.float64) @ b.astype(np.float64)).astype(np.float32)
    if perturb:
        d = d + np.float32(perturb)
    request = GemmRequest(a=a, b=b, max_rel_error=slo, request_id=request_id)
    response = GemmResponse(
        request_id=request_id, status=RequestStatus.COMPLETED,
        d=d, kernel="cublas-cuda-fp32", error_bound=1e-6,
    )
    return request, response


class TestVerification:
    def test_healthy_verify_fills_tightness_and_budget(self):
        sampler = AccuracySampler(rate=1.0)
        request, response = _completed()
        sampler.capture(1.0, request, response)
        records = sampler.flush()
        assert len(records) == 1 and sampler.verified == 1
        record = records[0]
        assert record["observed"] <= record["certified"]
        hist = sampler.tightness[("cublas-cuda-fp32", "4x16x4")]
        assert hist.count == 1
        assert hist.exemplar["labels"]["request_id"] == 7
        budget = sampler.budgets["slo_1e-02"].summary()
        assert budget["total"] == 1 and budget["bad"] == 0
        assert not sampler._pending  # flush drains

    def test_violation_raises_typed_and_records_flight_event(self, tmp_path):
        recorder = FlightRecorder()
        sampler = AccuracySampler(rate=1.0, recorder=recorder)
        request, response = _completed(perturb=0.5)  # way past the 1e-6 bound
        sampler.capture(1.0, request, response)
        with pytest.raises(BoundViolationError) as excinfo:
            sampler.flush()
        assert excinfo.value.record["request_id"] == 7
        assert isinstance(excinfo.value, AssertionError)  # generic catchers work
        events = [e for e in recorder.events() if e["kind"] == "bound_violation"]
        assert len(events) == 1
        assert events[0]["kernel"] == "cublas-cuda-fp32"
        # the new event kind round-trips the schema-validated JSONL path
        log = tmp_path / "flight.jsonl"
        recorder.dump_jsonl(log)
        assert not validate_flight_log(load_flight_log(log))

    def test_violation_collect_mode_and_budget_burn(self):
        sampler = AccuracySampler(rate=1.0, raise_on_violation=False)
        request, response = _completed(perturb=0.5)
        sampler.capture(1.0, request, response)
        sampler.flush()
        assert len(sampler.violations) == 1
        assert sampler.budgets["slo_1e-02"].summary()["bad"] == 1

    def test_degraded_contract_is_the_carried_bound(self):
        # a consented brownout degradation: observed may exceed the
        # original SLO without burning budget, as long as it honours
        # the certified bound the response carries
        sampler = AccuracySampler(rate=1.0)
        request, response = _completed(slo=1e-30)  # stricter than any kernel
        response.degraded = True
        sampler.capture(1.0, request, response)
        sampler.flush()
        assert sampler.budgets["slo_1e-30"].summary()["bad"] == 0

    def test_exemplars_emitted_only_on_request(self):
        recorder = FlightRecorder()
        sampler = AccuracySampler(rate=1.0, recorder=recorder)
        request, response = _completed()
        sampler.capture(1.0, request, response)
        sampler.flush()
        assert not recorder.events()  # healthy flush writes nothing
        assert sampler.emit_exemplars() == 1
        events = [e for e in recorder.events() if e["kind"] == "accuracy_exemplar"]
        assert len(events) == 1 and events[0]["ratio"] == pytest.approx(
            sampler.worst["cublas-cuda-fp32"]["ratio"]
        )


# ---------------------------------------------------------------------------
# the hard invariant as a property over the serving menu
# ---------------------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    m=st.integers(1, 12),
    k=st.integers(1, 24),
    n=st.integers(1, 12),
    distribution=st.sampled_from(
        ("normal", "uniform", "wide-exponent", "block-scaled", "out-of-range")
    ),
)
def test_observed_never_exceeds_certified_across_menu(seed, m, k, n, distribution):
    """observed <= certified for every menu kernel on arbitrary operands.

    Every cell goes through the resilient front door exactly like the
    sweep: finite-but-out-of-fp16-range operands take the power-of-two
    rescale escalation, and the certificate covers what actually ran.
    """
    from repro.kernels.registry import get_kernel
    from repro.resilience.runner import ResilientRunner

    rng = np.random.default_rng(seed)
    a, b = _draw_operands(rng, distribution, m, k, n)
    for name in DEFAULT_MENU:
        kernel = get_kernel(name)
        runner = ResilientRunner(chain=(name,), escalation="scaled", abft=False)
        result = runner.run(a, b)
        observed = observed_relative_error(result.d, a, b)
        certified = _certified_bound(name, kernel, k, a, b, result.escalation)
        assert observed <= certified, (
            f"{name} on {m}x{k}x{n} ({distribution}, escalation "
            f"{result.escalation}): observed {observed} > certified {certified}"
        )


# ---------------------------------------------------------------------------
# byte-identity: sampling must not perturb the served workload
# ---------------------------------------------------------------------------


def _serve_fingerprint(sampler):
    from repro.serve import build_report

    observer = ServeObserver()
    service, responses = run_load_test(
        120, seed=0, observer=observer, accuracy_sampler=sampler
    )
    report = build_report(service, {"requests": 120})
    report["slo_monitor"] = observer.slo_summary()
    digest = [
        (r.request_id, r.status.value, r.kernel,
         None if r.d is None else r.d.tobytes())
        for _, r in sorted(responses.items())
    ]
    return json.dumps(report, sort_keys=True, default=str), digest, service


class TestByteIdentity:
    def test_sampled_run_is_byte_identical_to_unsampled(self):
        plain_report, plain_digest, _ = _serve_fingerprint(None)
        sampler = AccuracySampler(rate=1.0, raise_on_violation=True)
        sampled_report, sampled_digest, service = _serve_fingerprint(sampler)
        sampler.flush()  # idempotent: run() already flushed
        assert sampled_report == plain_report
        assert sampled_digest == plain_digest
        assert sampler.verified == service.completed > 0
        assert not sampler.violations

    def test_env_var_activates_sampler(self, monkeypatch):
        from repro.serve.service import GemmService

        monkeypatch.setenv("REPRO_ACCURACY_SAMPLE", "0.25")
        service = GemmService()
        assert service.accuracy_sampler is not None
        assert service.accuracy_sampler.rate == 0.25
        monkeypatch.delenv("REPRO_ACCURACY_SAMPLE")
        assert GemmService().accuracy_sampler is None


# ---------------------------------------------------------------------------
# histogram exemplars
# ---------------------------------------------------------------------------


class TestHistogramExemplars:
    def test_retained_on_new_max_only(self):
        hist = Histogram(track_exemplars=True)
        hist.observe(5.0, exemplar={"id": 1})
        hist.observe(3.0, exemplar={"id": 2})
        assert hist.exemplar["value"] == 5.0
        assert hist.exemplar["labels"] == {"id": 1}
        hist.observe(7.0, exemplar={"id": 3})
        assert hist.exemplar["labels"] == {"id": 3}

    def test_snapshot_carries_exemplar_and_reset_clears(self):
        hist = Histogram(track_exemplars=True)
        hist.observe(2.0, exemplar={"id": 9})
        snap = hist.snapshot()
        assert snap["exemplar"]["labels"] == {"id": 9}
        hist.reset()
        assert hist.exemplar is None

    def test_disabled_by_default(self):
        hist = Histogram()
        hist.observe(2.0, exemplar={"id": 9})
        assert hist.exemplar is None
        assert "exemplar" not in hist.snapshot()


# ---------------------------------------------------------------------------
# OpenMetrics text round-trip
# ---------------------------------------------------------------------------


class TestOpenMetrics:
    def test_round_trip_preserves_values_under_munged_names(self):
        hist = Histogram(track_exemplars=True)
        for value in (0.25, 1.5, 6.0):
            hist.observe(value, exemplar={"request_id": 42})
        snapshot = {
            "counters": {"obs.accuracy.verified": 3, "obs.accuracy.sampled": 5},
            "gauges": {"obs.accuracy.sample_rate": 0.5},
            "histograms": {"obs.accuracy.tightness.k": hist.snapshot()},
            "providers": {},
        }
        text = openmetrics_text(snapshot)
        assert text.endswith("# EOF\n")
        parsed = parse_openmetrics(text)
        # dotted names munge to underscores — the format's charset, not a
        # lossy bug; values must survive exactly
        assert parsed["counters"]["obs_accuracy_verified"] == 3
        assert parsed["counters"]["obs_accuracy_sampled"] == 5
        assert parsed["gauges"]["obs_accuracy_sample_rate"] == 0.5
        round_hist = parsed["histograms"]["obs_accuracy_tightness_k"]
        assert round_hist["count"] == 3
        assert round_hist["sum"] == pytest.approx(7.75)
        assert round_hist["buckets"] == hist.snapshot()["buckets"]
        assert round_hist["exemplar"]["value"] == 6.0
        assert round_hist["exemplar"]["labels"]["request_id"] == "42"

    def test_counter_total_suffix_and_type_headers(self):
        text = openmetrics_text(
            {"counters": {"a.b": 1}, "gauges": {}, "histograms": {}, "providers": {}}
        )
        assert "# TYPE a_b counter" in text
        assert "a_b_total 1" in text


# ---------------------------------------------------------------------------
# fleet counter tracks
# ---------------------------------------------------------------------------


class TestCounterTracks:
    def test_counter_event_shape_and_validation(self):
        event = counter_event("fleet queue depth", 1.5, {"queued": 3}, pid=3)
        assert event["ph"] == "C" and event["args"] == {"queued": 3.0}
        assert validate_chrome_trace({"traceEvents": [event]}) == 1
        for bad in (
            {**event, "args": {}},
            {**event, "args": {"queued": "three"}},
            {**event, "ts": -1.0},
        ):
            with pytest.raises(ValueError):
                validate_chrome_trace({"traceEvents": [bad]})

    def test_fleet_samples_change_compressed_into_trace(self):
        observer = ServeObserver()
        observer.on_fleet_state(0.0, queue_depth=0, healthy_devices=3,
                                executing_batches=0)
        observer.on_fleet_state(1.0, queue_depth=0, healthy_devices=3,
                                executing_batches=0)  # dropped: no change
        observer.on_fleet_state(2.0, queue_depth=2, healthy_devices=3,
                                executing_batches=1)
        assert len(observer.fleet_samples) == 2
        events = observer.chrome_trace_events()
        counters = [e for e in events if e.get("ph") == "C"]
        assert {e["name"] for e in counters} == {
            "fleet queue depth", "fleet healthy devices",
            "fleet executing batches",
        }
        assert all(e["pid"] == 3 for e in counters)
        validate_chrome_trace({"traceEvents": events})

    def test_load_test_trace_carries_fleet_counters(self):
        observer = ServeObserver()
        run_load_test(60, seed=0, observer=observer)
        events = observer.chrome_trace_events()
        validate_chrome_trace({"traceEvents": events})
        depths = [e for e in events
                  if e.get("ph") == "C" and e["name"] == "fleet queue depth"]
        assert depths  # the fleet actually queued work
        assert any(e["args"]["queued_batches"] > 0 for e in depths)


# ---------------------------------------------------------------------------
# sweep + report schema
# ---------------------------------------------------------------------------


class TestSweepAndReport:
    def test_small_sweep_certifies_and_report_validates(self):
        sampler = AccuracySampler(rate=1.0)
        request, response = _completed()
        sampler.capture(1.0, request, response)
        sampler.flush()
        sweep = sweep_menu(
            shapes=((8, 8, 8),), distributions=("normal", "out-of-range"),
            trials=1, seed=0,
        )
        assert sweep["violations"] == 0
        assert len(sweep["rows"]) == 2 * len(DEFAULT_MENU)
        assert sweep["escalations"] > 0  # out-of-range forced the rescale
        report = build_accuracy_report(
            sampler, sweep, serve_workload={"requests": 1}, seed=0, quick=True
        )
        assert validate_accuracy_report(report) == []
        # every menu kernel carries an exemplar even though the serve
        # pass only exercised one kernel
        assert set(report["kernels"]) == set(DEFAULT_MENU)
        json.dumps(report)  # JSON-serializable end to end

    def test_validator_rejects_broken_reports(self):
        sweep = sweep_menu(shapes=((8, 8, 8),), distributions=("normal",),
                           trials=1, seed=0)
        report = build_accuracy_report(None, sweep, seed=0)
        assert validate_accuracy_report(report) == []
        for mutation in (
            lambda r: r.update(schema="bogus/9"),
            lambda r: r.update(violations="lots"),
            lambda r: r["sweep"].update(rows=[]),
            lambda r: r.pop("worst_tightness_ratio"),
            lambda r: r["kernels"].pop(DEFAULT_MENU[0]),
            lambda r: r["kernels"][DEFAULT_MENU[1]]["exemplar"].update(
                observed=1.0, certified=1e-9
            ),
        ):
            broken = json.loads(json.dumps(report))
            mutation(broken)
            assert validate_accuracy_report(broken), mutation
