"""Tests for FRAG fragments and the per-warp fragment space."""

import numpy as np
import pytest

from repro.tensorcore.fragment import (
    Fragment,
    FragmentOverflowError,
    FragmentRole,
    FragmentSpace,
)


class TestFragment:
    def test_role_dtypes(self):
        assert Fragment(FragmentRole.MATRIX_A, (16, 16)).dtype == np.float16
        assert Fragment(FragmentRole.MATRIX_B, (16, 16)).dtype == np.float16
        assert Fragment(FragmentRole.ACCUMULATOR, (16, 16)).dtype == np.float32

    def test_nbytes(self):
        assert Fragment(FragmentRole.MATRIX_A, (16, 16)).nbytes == 16 * 16 * 2
        assert Fragment(FragmentRole.ACCUMULATOR, (16, 16)).nbytes == 16 * 16 * 4

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            Fragment(FragmentRole.MATRIX_A, (0, 16))

    def test_fill(self):
        frag = Fragment(FragmentRole.ACCUMULATOR, (4, 4))
        frag.fill(2.5)
        assert np.all(frag.data == 2.5)

    def test_load_copies_and_converts(self, rng):
        frag = Fragment(FragmentRole.MATRIX_A, (4, 4))
        src = rng.uniform(0, 1, (4, 4)).astype(np.float32)
        frag.load(src)
        assert np.array_equal(frag.data, src.astype(np.float16))
        src[0, 0] = 99  # fragment owns its storage
        assert frag.data[0, 0] != np.float16(99)

    def test_load_shape_mismatch(self):
        frag = Fragment(FragmentRole.MATRIX_A, (4, 4))
        with pytest.raises(ValueError):
            frag.load(np.zeros((4, 8)))

    def test_store_returns_copy(self):
        frag = Fragment(FragmentRole.ACCUMULATOR, (2, 2))
        frag.fill(1.0)
        out = frag.store()
        out[0, 0] = 7.0
        assert frag.data[0, 0] == 1.0


class TestFragmentSpace:
    def test_allocation_accounting(self):
        space = FragmentSpace(capacity_bytes=4096)
        space.allocate(FragmentRole.MATRIX_A, (16, 16))  # 512 B
        assert space.used_bytes == 512

    def test_overflow_raises(self):
        space = FragmentSpace(capacity_bytes=512)
        space.allocate(FragmentRole.MATRIX_A, (16, 16))
        with pytest.raises(FragmentOverflowError):
            space.allocate(FragmentRole.MATRIX_A, (16, 16))

    def test_get_caches_by_key(self):
        space = FragmentSpace(capacity_bytes=65536)
        f1, cached1 = space.get("A0", FragmentRole.MATRIX_A, (16, 16))
        f2, cached2 = space.get("A0", FragmentRole.MATRIX_A, (16, 16))
        assert f1 is f2
        assert (cached1, cached2) == (False, True)
        assert (space.hits, space.misses) == (1, 1)

    def test_get_rejects_signature_change(self):
        space = FragmentSpace(capacity_bytes=65536)
        space.get("A0", FragmentRole.MATRIX_A, (16, 16))
        with pytest.raises(ValueError):
            space.get("A0", FragmentRole.MATRIX_B, (16, 16))

    def test_evict_frees_budget(self):
        space = FragmentSpace(capacity_bytes=512)
        space.get("A0", FragmentRole.MATRIX_A, (16, 16))
        space.evict("A0")
        assert space.used_bytes == 0
        space.get("A1", FragmentRole.MATRIX_A, (16, 16))  # fits again

    def test_reset_stats(self):
        space = FragmentSpace(capacity_bytes=65536)
        space.get("x", FragmentRole.MATRIX_A, (16, 16))
        space.reset_stats()
        assert (space.hits, space.misses) == (0, 0)
