"""Tests for the tensorization layer (§4): tiling, plans, FRAG caching,
the instruction-stream builder, and the functional kernel."""

import numpy as np
import pytest

from repro.emulation.gemm import reference_exact
from repro.emulation.schemes import HALF
from repro.fp.error import max_error
from repro.gpu.isa import Opcode
from repro.gpu.scheduler import schedule
from repro.gpu.spec import TESLA_T4
from repro.tensorcore.mma import M16N16K16
from repro.tensorize.frag_cache import FragCachePolicy, check_register_budget, frag_bytes_per_warp
from repro.tensorize.kernel import build_gemm_stream, run_functional
from repro.tensorize.plan import TensorizationPlan, table2_rows
from repro.tensorize.tiling import T4_TILING, TilingConfig

SMALL = TilingConfig(bm=32, bn=32, bk=16, wm=16, wn=16, wk=8)


class TestTilingConfig:
    def test_paper_design_point(self):
        """Table 4's derived quantities."""
        cfg = T4_TILING
        assert cfg.warps_per_block == 8
        assert cfg.threads_per_block == 256
        assert cfg.shared_mem_bytes == 36 * 1024
        assert cfg.compute_intensity == pytest.approx(128.0)  # Eq. 4

    def test_eq2_eq3(self):
        cfg = T4_TILING
        assert cfg.ldg_bytes_per_iteration == 4 * (128 + 128) * 32  # Eq. 2
        assert cfg.flops_per_iteration == 8 * 128 * 128 * 32  # Eq. 3

    def test_intensity_independent_of_bk(self):
        """The §6.1 observation that justifies shrinking bk."""
        a = TilingConfig(128, 128, 32, 64, 32, 8)
        b = TilingConfig(128, 128, 16, 64, 32, 8)
        assert a.compute_intensity == b.compute_intensity

    def test_grid_geometry(self):
        assert T4_TILING.grid_blocks(8192, 8192) == 64 * 64
        assert T4_TILING.grid_dims(1000, 1000) == (8, 8)  # ceil(1000/128)
        assert T4_TILING.k_iterations(8192) == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            TilingConfig(100, 128, 32, 64, 32, 8)  # bm % wm != 0
        with pytest.raises(ValueError):
            TilingConfig(128, 128, 32, 64, 32, 12)  # wk % tc.k != 0
        with pytest.raises(ValueError):
            TilingConfig(128, 128, 8, 64, 32, 16)  # wk > bk
        with pytest.raises(ValueError):
            TilingConfig(0, 128, 32, 64, 32, 8)

    def test_hmma_normalization_across_shapes(self):
        """WMMA 16x16x16 counts as 4 HMMA.1688 equivalents."""
        a = TilingConfig(64, 64, 16, 32, 32, 16, tc=M16N16K16)
        b = TilingConfig(64, 64, 16, 32, 32, 8)
        assert a.hmma_per_iteration(4) == b.hmma_per_iteration(4)


class TestPlan:
    def test_table2_at_design_point(self):
        """Table 2 with the bk/tk reload factor: 8x saving on Alo, 4x on C."""
        rows = {r.name: r for r in table2_rows(T4_TILING)}
        assert rows["Alo"].size_bytes == 2 * 64 * 32
        assert rows["Alo"].saving_factor == pytest.approx(8.0)
        assert rows["C"].size_bytes == 4 * 64 * 32
        assert rows["C"].saving_factor == pytest.approx(4.0)

    def test_instruction_counts(self):
        plan = TensorizationPlan(8192, 8192, 8192, T4_TILING)
        assert plan.ldg_per_iteration() == 64  # 32 KB / 512 B
        assert plan.sts_per_iteration() == 64
        assert plan.hmma_per_iteration(4) == (128 // 16) * (128 // 8) * (32 // 8) * 4

    def test_frag_caching_reduces_lds(self):
        on = TensorizationPlan(8192, 8192, 8192, T4_TILING, frag_caching=True)
        off = TensorizationPlan(8192, 8192, 8192, T4_TILING, frag_caching=False)
        assert off.lds_per_iteration() > 2 * on.lds_per_iteration()

    def test_useful_flops(self):
        plan = TensorizationPlan(100, 200, 300, SMALL)
        assert plan.useful_flops == 2 * 100 * 200 * 300

    def test_dram_bytes_reasonable(self):
        """Per-block unique DRAM traffic sits between the perfectly-shared
        lower bound and the no-reuse upper bound."""
        plan = TensorizationPlan(8192, 8192, 8192, T4_TILING)
        per_block = plan.dram_bytes_per_block(TESLA_T4)
        no_reuse = plan.k_iterations * T4_TILING.ldg_bytes_per_iteration + plan.c_io_bytes_per_block()
        assert per_block < no_reuse
        assert per_block > plan.c_io_bytes_per_block()

    def test_wave_shape_covers_wave(self):
        plan = TensorizationPlan(8192, 8192, 8192, T4_TILING)
        rows, cols = plan.wave_shape(TESLA_T4)
        assert rows * cols >= min(plan.grid_blocks, TESLA_T4.num_sms)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            TensorizationPlan(0, 8, 8, SMALL)


class TestFragCache:
    def test_policy_hit_miss(self):
        p = FragCachePolicy(enabled=True)
        assert p.should_load("a")
        assert not p.should_load("a")
        assert p.should_load("b")
        assert p.hit_rate == pytest.approx(1 / 3)

    def test_invalidate_clears(self):
        p = FragCachePolicy(enabled=True)
        p.should_load("a")
        p.invalidate()
        assert p.should_load("a")

    def test_disabled_always_loads(self):
        p = FragCachePolicy(enabled=False)
        assert p.should_load("a") and p.should_load("a")
        assert p.hit_rate == 0.0

    def test_frag_bytes_per_warp_design_point(self):
        # C tile (64x32 fp32) + double-buffered split operand fragments.
        expected = 4 * 64 * 32 + 2 * 2 * (64 + 32) * 8 * 2
        assert frag_bytes_per_warp(T4_TILING) == expected

    def test_register_budget_check(self):
        assert check_register_budget(T4_TILING, TESLA_T4)
        huge = TilingConfig(256, 256, 32, 64, 32, 8)
        assert not check_register_budget(huge, TESLA_T4)


class TestStreamBuilder:
    @pytest.fixture(scope="class")
    def plan(self):
        return TensorizationPlan(1024, 1024, 1024, T4_TILING)

    def test_identical_instruction_counts(self, plan):
        """Figure 6: scheduling changes order, never the instruction mix."""
        on = build_gemm_stream(plan, latency_hiding=True)
        off = build_gemm_stream(plan, latency_hiding=False)
        for op in (Opcode.LDG, Opcode.LDS, Opcode.STS, Opcode.HMMA, Opcode.STG):
            assert on.count(op) == off.count(op), op

    def test_hiding_is_faster(self, plan):
        on = schedule(build_gemm_stream(plan, latency_hiding=True), TESLA_T4)
        off = schedule(build_gemm_stream(plan, latency_hiding=False), TESLA_T4)
        assert on.total_cycles < off.total_cycles
        # the paper's Figure 11 factor is ~1.14; accept a sane range
        assert 1.05 < off.total_cycles / on.total_cycles < 1.6

    def test_hmma_total(self, plan):
        stream = build_gemm_stream(plan, latency_hiding=True)
        expected = plan.k_iterations * plan.hmma_per_iteration(4)
        assert stream.count(Opcode.HMMA) == expected

    def test_lds_cost_factor_scales(self, plan):
        base = build_gemm_stream(plan).count(Opcode.LDS)
        conflicted = build_gemm_stream(plan, lds_cost_factor=4.0).count(Opcode.LDS)
        assert conflicted == pytest.approx(4 * base, rel=0.05)

    def test_single_iteration_edge(self):
        plan = TensorizationPlan(128, 128, 32, T4_TILING)
        assert plan.k_iterations == 1
        stream = build_gemm_stream(plan, latency_hiding=True)
        assert stream.count(Opcode.LDG) > 0  # prologue only
        schedule(stream, TESLA_T4)  # must be well-formed


class TestFunctionalKernel:
    def test_matches_exact_within_extended_precision(self, rng):
        a = rng.uniform(-1, 1, (64, 48)).astype(np.float32)
        b = rng.uniform(-1, 1, (48, 64)).astype(np.float32)
        c = rng.uniform(-1, 1, (64, 64)).astype(np.float32)
        res = run_functional(a, b, c, config=SMALL)
        assert max_error(res.d, reference_exact(a, b, c)) < 1e-4

    def test_caching_does_not_change_numerics(self, rng):
        """The central safety property of the FRAG caching optimization."""
        a = rng.uniform(-1, 1, (64, 32)).astype(np.float32)
        b = rng.uniform(-1, 1, (32, 64)).astype(np.float32)
        on = run_functional(a, b, config=SMALL, frag_caching=True)
        off = run_functional(a, b, config=SMALL, frag_caching=False)
        assert np.array_equal(on.d, off.d)

    def test_caching_reduces_measured_traffic(self, rng):
        a = rng.uniform(-1, 1, (64, 64)).astype(np.float32)
        b = rng.uniform(-1, 1, (64, 64)).astype(np.float32)
        on = run_functional(a, b, config=SMALL, frag_caching=True)
        off = run_functional(a, b, config=SMALL, frag_caching=False)
        assert off.traffic.shared_load > 2 * on.traffic.shared_load
        assert on.frag_hit_rate > 0.5
        assert off.frag_hit_rate == 0.0

    def test_padding_for_odd_sizes(self, rng):
        a = rng.uniform(-1, 1, (50, 30)).astype(np.float32)
        b = rng.uniform(-1, 1, (30, 45)).astype(np.float32)
        res = run_functional(a, b, config=SMALL)
        assert res.d.shape == (50, 45)
        assert max_error(res.d, reference_exact(a, b)) < 1e-4

    def test_half_scheme_single_term(self, rng):
        a = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        b = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        res = run_functional(a, b, config=SMALL, scheme=HALF)
        # 1 term instead of 4 -> a quarter of the mma calls.
        res4 = run_functional(a, b, config=SMALL)
        assert res.mma_calls * 4 == res4.mma_calls

    def test_k_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            run_functional(
                np.zeros((32, 16), np.float32), np.zeros((32, 32), np.float32), config=SMALL
            )
