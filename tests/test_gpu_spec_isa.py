"""Tests for GPU specs (Table 3) and the SASS-like ISA."""

import pytest

from repro.gpu.isa import ExecUnit, InstrGroup, InstructionStream, Opcode
from repro.gpu.spec import GPUS, RTX6000, TESLA_T4, get_gpu, table3_rows


class TestSpecs:
    def test_table3_budget(self):
        """The paper's Table 3, verbatim."""
        rows = {r["resource"]: r["budget"] for r in table3_rows(TESLA_T4)}
        assert rows["Shared Memory Size"] == "64 KB"
        assert rows["FRAG/Register Size"] == "256 KB"
        assert rows["Peak Computation"] == "64 TFLOPS"
        assert rows["L2 Cache Speed"] == "750 GB/s"

    def test_t4_topology(self):
        assert TESLA_T4.num_sms == 40
        assert TESLA_T4.num_sms * TESLA_T4.tensor_cores_per_sm == 320  # [24]
        assert TESLA_T4.max_registers_per_thread == 256

    def test_rtx6000_topology(self):
        assert RTX6000.num_sms * RTX6000.tensor_cores_per_sm == 576  # [23]
        assert RTX6000.dram_bw_gbps > TESLA_T4.dram_bw_gbps

    def test_derived_rates_positive(self):
        for spec in (TESLA_T4, RTX6000):
            assert spec.flops_per_cycle_tc_per_sm > 0
            assert spec.dram_bytes_per_cycle_per_sm > 0

    def test_cycles_to_seconds(self):
        assert TESLA_T4.cycles_to_seconds(1.59e9) == pytest.approx(1.0)

    def test_get_gpu_aliases(self):
        assert get_gpu("t4") is TESLA_T4
        assert get_gpu("Tesla T4") is TESLA_T4
        assert get_gpu("RTX-6000") is RTX6000
        with pytest.raises(KeyError):
            get_gpu("a100")

    def test_with_overrides(self):
        fast = TESLA_T4.with_overrides(clock_ghz=2.0)
        assert fast.clock_ghz == 2.0
        assert TESLA_T4.clock_ghz == 1.59  # original untouched

    def test_registry(self):
        assert set(GPUS) == {"t4", "rtx6000"}


class TestIsa:
    def test_units(self):
        """§5.1: memory instructions share one sequential pipeline."""
        for op in (Opcode.LDS, Opcode.LDG, Opcode.STS, Opcode.STG):
            assert op.unit is ExecUnit.MEM
        assert Opcode.HMMA.unit is ExecUnit.TENSOR
        assert Opcode.BAR.unit is ExecUnit.SYNC

    def test_traffic_bytes_128bit(self):
        assert InstrGroup(Opcode.LDG, 4).traffic_bytes == 4 * 512
        assert InstrGroup(Opcode.HMMA, 4).traffic_bytes == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            InstrGroup(Opcode.LDS, -1)

    def test_issue_cycles_scale_with_count(self):
        g1 = InstrGroup(Opcode.HMMA, 1)
        g10 = InstrGroup(Opcode.HMMA, 10)
        assert g10.issue_cycles(TESLA_T4) == pytest.approx(10 * g1.issue_cycles(TESLA_T4))

    def test_ldg_latency_dominates_lds(self):
        assert InstrGroup(Opcode.LDG, 1).completion_latency(TESLA_T4) > InstrGroup(
            Opcode.LDS, 1
        ).completion_latency(TESLA_T4)

    def test_stream_emit_and_counts(self):
        stream = InstructionStream()
        i0 = stream.emit(Opcode.LDG, 8)
        i1 = stream.emit(Opcode.STS, 8, depends_on=(i0,))
        stream.emit(Opcode.HMMA, 64, depends_on=(i1,))
        assert (i0, i1) == (0, 1)
        assert stream.count(Opcode.LDG) == 8
        assert stream.count(Opcode.HMMA) == 64
        assert stream.traffic_bytes(Opcode.LDG) == 8 * 512
        assert stream.hmma_flops() == 64 * 2048
        assert len(stream) == 3
