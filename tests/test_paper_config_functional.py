"""Integration test: the functional kernel at the paper's exact Table 4
configuration, cross-checked against Table 2's traffic accounting.

One block of the real design point (bm=bn=128, bk=32, wm=64, wn=32,
wk=8, HMMA.1688 tiles, 8 warps) executed bit-accurately through the
simulated memory hierarchy — the slowest test in the suite, and the one
that ties the three kernel layers together at the published operating
point rather than a scaled-down stand-in.
"""

import numpy as np
import pytest

from repro.emulation.gemm import EmulatedGemm, reference_exact
from repro.fp.error import max_error
from repro.tensorize.kernel import run_functional
from repro.tensorize.plan import TensorizationPlan, table2_rows
from repro.tensorize.tiling import T4_TILING


@pytest.fixture(scope="module")
def one_block_run():
    rng = np.random.default_rng(7)
    m, n, k = 128, 128, 32  # exactly one block, one k-iteration
    a = rng.uniform(-1, 1, (m, k)).astype(np.float32)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float32)
    result = run_functional(a, b, config=T4_TILING)
    return a, b, result


class TestPaperConfigFunctional:
    def test_numerics_extended_precision(self, one_block_run):
        a, b, res = one_block_run
        assert max_error(res.d, reference_exact(a, b)) < 5e-5

    def test_close_to_vectorized_path(self, one_block_run):
        a, b, res = one_block_run
        vec = EmulatedGemm()(a, b)
        # Different accumulation order, same precision class.
        assert max_error(res.d, vec) < 5e-5

    def test_mma_call_count(self, one_block_run):
        _, _, res = one_block_run
        plan = TensorizationPlan(128, 128, 32, T4_TILING)
        # functional sim issues one mma per HMMA.1688 tile
        assert res.mma_calls == plan.hmma_per_iteration(4)

    def test_per_warp_shared_traffic_matches_table2_class(self, one_block_run):
        """Measured shared->FRAG traffic per warp equals the with-caching
        accounting: both A splits (2*wm*bk halfs) + both B splits."""
        _, _, res = one_block_run
        warps = T4_TILING.warps_per_block
        per_warp = res.traffic.shared_load / warps
        expected = 2 * T4_TILING.wm * T4_TILING.bk * 2 + 2 * T4_TILING.wn * T4_TILING.bk * 2
        assert per_warp == pytest.approx(expected, rel=0.01)

    def test_table2_alo_row_matches_measured_a_share(self, one_block_run):
        """Table 2's Alo 'w/ FRAG caching' entry (2*wm*bk bytes) is the
        A-lo share of the measured per-warp traffic."""
        _, _, res = one_block_run
        rows = {r.name: r for r in table2_rows(T4_TILING)}
        # One split matrix (A-lo alone) per warp: wm x bk halfs.
        a_lo_per_warp = T4_TILING.wm * T4_TILING.bk * 2
        assert rows["Alo"].with_frag_caching == a_lo_per_warp

    def test_frag_hit_rate_high(self, one_block_run):
        _, _, res = one_block_run
        # wn/tn = 4 column tiles reuse each A fragment; wm/tm = 4 row
        # tiles reuse each B fragment -> high intra-warp hit rate.
        assert res.frag_hit_rate > 0.7

    def test_global_loads_match_eq2_plus_c(self, one_block_run):
        _, _, res = one_block_run
        eq2 = T4_TILING.ldg_bytes_per_iteration
        c_bytes = 128 * 128 * 4
        assert res.traffic.global_load == eq2 + c_bytes
        assert res.traffic.global_store == 128 * 128 * 4
