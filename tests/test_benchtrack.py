"""Tests for the benchmark history and its run-over-run regression gate.

The history file is the durable perf time series behind ``python -m
repro bench --check``; these tests pin the record schema, the series
filtering, the median-of-N baseline robustness, and every verdict class
of the gate — including that a >=20% synthetic slowdown on a gated
metric fails the check while informational metrics never do.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.benchtrack import (
    BASELINE_N,
    HISTORY_SCHEMA,
    MetricSpec,
    append_record,
    check_metrics,
    format_check,
    load_history,
    make_record,
    validate_history,
)
from repro.perf.bench import METRIC_SPECS, tracked_metrics


class TestRecords:
    def test_roundtrip_append_load(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        for i in range(3):
            append_record(path, make_record("bench", {"speedup": 2.0 + i},
                                            quick=True))
        append_record(path, make_record("serve", {"rps": 100.0}, quick=True))
        assert len(load_history(path)) == 4
        assert len(load_history(path, kind="bench")) == 3
        assert len(load_history(path, kind="serve", quick=True)) == 1
        assert load_history(path, kind="bench", quick=False) == []
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_record_shape_and_numeric_coercion(self):
        record = make_record(
            "bench",
            {"speedup": 3.5, "count": 7, "ok": True, "label": "ignored",
             "nested": {"x": 1}},
            quick=False,
            manifest={"seed": 0},
            label="nightly",
        )
        assert record["schema"] == HISTORY_SCHEMA
        assert record["metrics"] == {"speedup": 3.5, "count": 7.0, "ok": 1.0}
        assert record["label"] == "nightly"
        assert record["manifest"] == {"seed": 0}
        assert validate_history([record]) == []

    def test_validation_catches_bad_records(self):
        assert any("schema" in p for p in validate_history([{"kind": "bench"}]))
        bad = make_record("bench", {"x": 1.0})
        bad["metrics"]["x"] = "fast"
        assert any("not numeric" in p for p in validate_history([bad]))
        bad2 = make_record("", {})
        assert any("kind" in p for p in validate_history([bad2]))

    def test_append_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError, match="invalid record"):
            append_record(tmp_path / "h.jsonl", {"schema": "wrong"})

    def test_records_are_sorted_key_jsonl(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_record(path, make_record("bench", {"b": 1.0, "a": 2.0}))
        line = path.read_text().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True)


def _history(values, name="speedup", kind="bench"):
    return [make_record(kind, {name: v}, quick=True) for v in values]


class TestCheckVerdicts:
    SPEC = (MetricSpec("speedup", "higher", 0.10),)

    def test_no_baseline_when_history_empty(self):
        result = check_metrics({"speedup": 2.0}, [], self.SPEC)
        assert result["verdicts"]["speedup"]["verdict"] == "no-baseline"
        assert result["ok"]

    def test_ok_inside_band(self):
        result = check_metrics({"speedup": 1.95}, _history([2.0] * 3), self.SPEC)
        assert result["verdicts"]["speedup"]["verdict"] == "ok"
        assert result["ok"]

    def test_improved_outside_band_good_side(self):
        result = check_metrics({"speedup": 2.5}, _history([2.0] * 3), self.SPEC)
        assert result["verdicts"]["speedup"]["verdict"] == "improved"
        assert result["ok"]

    def test_twenty_percent_drop_is_regression(self):
        result = check_metrics({"speedup": 1.6}, _history([2.0] * 3), self.SPEC)
        assert result["verdicts"]["speedup"]["verdict"] == "regression"
        assert result["regressions"] == ["speedup"]
        assert not result["ok"]
        assert "FAIL" in format_check(result)

    def test_lower_is_better_direction(self):
        spec = (MetricSpec("latency", "lower", 0.10),)
        worse = check_metrics({"latency": 1.3}, _history([1.0], name="latency"),
                              spec)
        assert worse["verdicts"]["latency"]["verdict"] == "regression"
        better = check_metrics({"latency": 0.8}, _history([1.0], name="latency"),
                               spec)
        assert better["verdicts"]["latency"]["verdict"] == "improved"

    def test_info_metric_never_gates(self):
        spec = (MetricSpec("wall", "lower", 0.10, gate=False),)
        result = check_metrics({"wall": 50.0}, _history([1.0], name="wall"), spec)
        assert result["verdicts"]["wall"]["verdict"] == "info"
        assert result["ok"]

    def test_missing_gated_metric_is_regression(self):
        result = check_metrics({}, _history([2.0] * 3), self.SPEC)
        assert result["verdicts"]["speedup"]["verdict"] == "missing"
        assert not result["ok"]
        # but with no prior data, absence is just no-baseline
        result = check_metrics({}, [], self.SPEC)
        assert result["verdicts"]["speedup"]["verdict"] == "no-baseline"
        assert result["ok"]

    def test_median_of_n_absorbs_one_outlier(self):
        # one wildly slow prior run must not drag the baseline down
        values = [2.0, 2.0, 0.1, 2.0, 2.0]
        result = check_metrics({"speedup": 1.95}, _history(values), self.SPEC)
        assert result["verdicts"]["speedup"]["baseline"] == 2.0
        assert result["verdicts"]["speedup"]["verdict"] == "ok"

    def test_baseline_window_is_last_n(self):
        values = [10.0] * 5 + [2.0] * BASELINE_N
        result = check_metrics({"speedup": 2.0}, _history(values), self.SPEC)
        entry = result["verdicts"]["speedup"]
        assert entry["baseline"] == 2.0
        assert entry["baseline_n"] == BASELINE_N

    def test_zero_tolerance_exact_match_ok(self):
        spec = (MetricSpec("bit_identical", "higher", 0.0),)
        ok = check_metrics({"bit_identical": 1.0},
                           _history([1.0] * 3, name="bit_identical"), spec)
        assert ok["verdicts"]["bit_identical"]["verdict"] == "ok"
        broken = check_metrics({"bit_identical": 0.0},
                               _history([1.0] * 3, name="bit_identical"), spec)
        assert broken["verdicts"]["bit_identical"]["verdict"] == "regression"

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="direction"):
            MetricSpec("x", "sideways", 0.1)
        with pytest.raises(ValueError, match="non-negative"):
            MetricSpec("x", "higher", -0.1)


class TestBenchIntegration:
    def test_metric_specs_cover_tracked_metrics(self):
        """Every spec names a metric the bench actually produces."""
        fake_report = {
            "batched_gemm": {"speedup": 2.0, "bit_identical": True,
                             "split_cache": {"hit_rate": 0.5}},
            "power_iteration": {"speedup": 2.0, "bit_identical": True},
            "schedule_memoization": {"speedup": 2.0, "hit_rate": 0.9},
            "bucketed_stream": {"speedup": 1.2, "bit_identical": True,
                                "split_cache": {"hit_rate": 0.5}},
            "serving": {"virtual_throughput_rps": 9e4, "p99_latency_s": 2e-4,
                        "mean_batch_size": 2.0, "counts": {"completed": 100},
                        "wall_seconds": 0.2, "requests_per_wall_second": 500.0},
        }
        metrics = tracked_metrics(fake_report)
        spec_names = {s.name for s in METRIC_SPECS}
        assert spec_names == set(metrics)
        # the gate rests on deterministic virtual metrics; wall noise is info
        gated = {s.name for s in METRIC_SPECS if s.gate}
        assert "serving.virtual_throughput_rps" in gated
        assert "serving.wall_seconds" not in gated
        assert all(not s.gate for s in METRIC_SPECS if "speedup" in s.name)
