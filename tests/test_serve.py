"""The serving layer: routing, batching, dispatch, SLOs, and accounting.

Covers the acceptance contract of the ``repro.serve`` subsystem:

* the router never selects a kernel whose analytic error bound violates
  the request's accuracy SLO, across the whole kernel menu;
* batched execution is bit-identical to an unbatched replay;
* deadline/backpressure edge cases: zero-capacity queues, requests that
  expire while batched, impossible SLOs (typed error, not a hang),
  degenerate ``k = 0`` operands;
* the accounting identity — submitted == completed + rejected + expired
  — and byte-deterministic seeded replay;
* the context-local hook tier that makes the observability/fault
  single-slot hooks safe under concurrent serving threads.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emulation.gemm import EmulatedGemm
from repro.fp.error import gemm_relative_error_bound
from repro.obs.metrics import get_registry
from repro.perf import bucket_by_shape, gemm_shape_key, run_bucketed
from repro.serve import (
    DynamicBatcher,
    GemmRequest,
    GemmService,
    PrecisionRouter,
    RequestStatus,
    ServeConfig,
    SloUnsatisfiableError,
    build_report,
    kernel_error_model,
    run_load_test,
    validate_slo_report,
)
from repro.fp.error import operand_spread
from repro.resilience.runner import assess_operand
from repro.serve.loadgen import make_request
from repro.serve.router import (
    _floor_bucket,
    _spread_bucket,
    kernel_blockwise_slices,
    kernel_subnormal_eta,
)


def _request(rng, m=32, k=32, n=32, **kwargs) -> GemmRequest:
    a = rng.uniform(-1, 1, (m, k)).astype(np.float32)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float32)
    return GemmRequest(a=a, b=b, **kwargs)


# ---------------------------------------------------------------------------
# router: the accuracy contract
# ---------------------------------------------------------------------------


class TestRouter:
    def test_never_violates_slo_across_menu(self, rng):
        """Routed bound <= SLO for every satisfiable (k, slo) combination."""
        router = PrecisionRouter()
        for k in (8, 16, 32, 64, 128, 256):
            for slo in (1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 3e-6, 1e-6):
                request = _request(rng, m=16, k=k, n=16, max_rel_error=slo)
                buckets = (
                    _spread_bucket(operand_spread(request.a, axis=1)),
                    _spread_bucket(operand_spread(request.b, axis=0)),
                )
                # plain (non-reliable) requests run unconditioned, so
                # the fp16-family certificate prices the raw magnitudes
                floors = (
                    _floor_bucket(assess_operand(request.a), False),
                    _floor_bucket(assess_operand(request.b), False),
                )
                try:
                    decision = router.route(request)
                except SloUnsatisfiableError:
                    # Must genuinely be unsatisfiable *for these
                    # operands*: every menu kernel's certificate exceeds
                    # the SLO — the static Higham bound for fp32, the
                    # spread-refined bound for blockwise, the
                    # subnormal-floor-refined bound for the fp16 family.
                    for name, kernel in router.kernels.items():
                        if kernel_blockwise_slices(kernel) is not None:
                            assert router.spread_bound(name, k, *buckets) > slo
                        elif kernel_subnormal_eta(kernel) is not None:
                            assert router.floor_bound(name, k, *floors) > slo
                        else:
                            mant, acc = kernel_error_model(kernel)
                            assert gemm_relative_error_bound(k, mant, acc) > slo
                    continue
                assert decision.error_bound <= slo
                winner = router.kernels[decision.kernel]
                if kernel_blockwise_slices(winner) is not None:
                    # a blockwise win is certified per request at its
                    # measured (bucketed) operand spreads
                    assert decision.error_bound == router.spread_bound(
                        decision.kernel, k, *buckets
                    )
                elif kernel_subnormal_eta(winner) is not None:
                    # an fp16-family win is certified per request at its
                    # bucketed operand magnitude floors
                    assert decision.error_bound == router.floor_bound(
                        decision.kernel, k, *floors
                    )
                else:
                    mant, acc = kernel_error_model(winner)
                    assert decision.error_bound == gemm_relative_error_bound(k, mant, acc)

    def test_routes_cheapest_eligible(self, rng):
        router = PrecisionRouter()
        request = _request(rng, m=16, k=32, n=16, max_rel_error=1e-2)
        decision = router.route(request)
        for name in router.kernels:
            if router.error_bound(name, 32) <= 1e-2:
                assert decision.seconds <= router.seconds_for(name, request.shape)

    def test_measured_error_within_analytic_bound(self, rng):
        """The bound is a real certificate: measured error sits below it."""
        router = PrecisionRouter()
        a = rng.uniform(-1, 1, (32, 64)).astype(np.float32)
        b = rng.uniform(-1, 1, (64, 32)).astype(np.float32)
        scale = np.abs(a.astype(np.float64)) @ np.abs(b.astype(np.float64))
        exact = a.astype(np.float64) @ b.astype(np.float64)
        for name, kernel in router.kernels.items():
            d = np.asarray(kernel.compute(a, b), dtype=np.float64)
            bound = router.error_bound(name, 64)
            measured = np.max(np.abs(d - exact) / scale)
            assert measured <= bound, f"{name}: {measured} > {bound}"

    def test_impossible_slo_is_typed_error(self, rng):
        router = PrecisionRouter()
        request = _request(rng, max_rel_error=1e-12)
        with pytest.raises(SloUnsatisfiableError):
            router.route(request)
        # and it is also a ValueError, so generic callers can catch it
        with pytest.raises(ValueError):
            router.route(request)

    def test_degenerate_k_zero_routes(self, rng):
        router = PrecisionRouter()
        a = np.zeros((8, 0), dtype=np.float32)
        b = np.zeros((0, 8), dtype=np.float32)
        request = GemmRequest(a=a, b=b, max_rel_error=1e-10)
        decision = router.route(request)
        assert decision.error_bound == 0.0  # empty reduction is exact
        assert decision.seconds > 0.0


# ---------------------------------------------------------------------------
# bucketing: the shared coalescing helper (property tests)
# ---------------------------------------------------------------------------


class TestBucketing:
    def test_order_preserving(self):
        items = ["aa", "b", "cc", "d", "ee", "f"]
        buckets = bucket_by_shape(items, key=len)
        assert list(buckets) == [2, 1]
        assert buckets[2] == [0, 2, 4]
        assert buckets[1] == [1, 3, 5]

    @given(
        shape_picks=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_run_bucketed_bit_identical(self, shape_picks, seed):
        """Coalesced results match per-request runs bit for bit."""
        shapes = ((8, 16, 8), (4, 16, 12), (8, 32, 4))
        rng = np.random.default_rng(seed)
        problems = []
        for pick in shape_picks:
            m, k, n = shapes[pick]
            problems.append(
                (
                    rng.standard_normal((m, k)).astype(np.float32),
                    rng.standard_normal((k, n)).astype(np.float32),
                )
            )
        gemm = EmulatedGemm()
        coalesced = run_bucketed(gemm, problems)
        for (a, b), d in zip(problems, coalesced):
            expected, _ = gemm.run(a, b)
            assert np.array_equal(
                d.view(np.uint32), expected.view(np.uint32)
            )

    def test_shape_key_validates(self):
        with pytest.raises(ValueError):
            gemm_shape_key(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            gemm_shape_key(np.zeros(3), np.zeros((3, 2)))


# ---------------------------------------------------------------------------
# service: bit-exact batching
# ---------------------------------------------------------------------------


class TestBatchedExactness:
    def test_batched_equals_unbatched_replay(self, rng):
        """Every completed response matches a fresh per-request compute."""
        config = ServeConfig(max_batch_size=8, max_wait_s=500e-6)
        service = GemmService(config)
        requests = []
        for i in range(40):
            m, k, n = ((16, 32, 16), (32, 32, 32))[i % 2]
            requests.append(
                _request(rng, m=m, k=k, n=n, max_rel_error=(1e-2, 1e-4)[i % 2])
            )
        responses = service.run((i * 1e-6, r) for i, r in enumerate(requests))
        service.check_accounting()
        batched_sizes = set()
        for request in requests:
            response = responses[request.request_id]
            assert response.status is RequestStatus.COMPLETED
            batched_sizes.add(response.batch_size)
            kernel = service.router.kernels[response.kernel]
            replay = np.asarray(
                kernel.compute(request.a, request.b, request.c), dtype=np.float32
            )
            assert np.array_equal(
                response.d.view(np.uint32), replay.view(np.uint32)
            ), f"request {request.request_id} via {response.kernel}"
        assert any(size > 1 for size in batched_sizes), "nothing coalesced"

    def test_batch_with_c_accumulands(self, rng):
        config = ServeConfig(max_batch_size=4, max_wait_s=500e-6)
        service = GemmService(config)
        requests = []
        for _ in range(8):
            r = _request(rng, m=16, k=32, n=16, max_rel_error=1e-2)
            r.c = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
            requests.append(r)
        responses = service.run((0.0, r) for r in requests)
        for request in requests:
            response = responses[request.request_id]
            assert response.status is RequestStatus.COMPLETED
            kernel = service.router.kernels[response.kernel]
            replay = np.asarray(
                kernel.compute(request.a, request.b, request.c), dtype=np.float32
            )
            assert np.array_equal(response.d.view(np.uint32), replay.view(np.uint32))

    def test_reliable_requests_resolve_with_provenance(self, rng):
        service = GemmService(ServeConfig(max_wait_s=0.0, max_batch_size=1))
        request = _request(rng, max_rel_error=1e-2, reliable=True)
        responses = service.run([(0.0, request)])
        response = responses[request.request_id]
        assert response.status is RequestStatus.COMPLETED
        assert response.attempts, "reliable path must record runner attempts"
        assert response.attempts[0]["kernel"] == response.kernel
        reference = np.asarray(
            service.router.kernels[response.kernel].compute(request.a, request.b),
            dtype=np.float64,
        )
        np.testing.assert_allclose(response.d, reference, rtol=1e-5, atol=1e-5)


# ---------------------------------------------------------------------------
# service: deadline / backpressure edge cases
# ---------------------------------------------------------------------------


class TestEdgeCases:
    def test_zero_capacity_queue_rejects_not_hangs(self, rng):
        """Rendezvous-only devices: overflow is an explicit rejection."""
        config = ServeConfig(
            devices=("t4",), queue_capacity=0, max_batch_size=1, max_wait_s=0.0
        )
        service = GemmService(config)
        requests = [_request(rng, max_rel_error=1e-2) for _ in range(6)]
        responses = service.run((0.0, r) for r in requests)
        service.check_accounting()
        statuses = [responses[r.request_id].status for r in requests]
        assert statuses[0] is RequestStatus.COMPLETED
        assert statuses.count(RequestStatus.REJECTED) == 5
        reasons = {responses[r.request_id].reason for r in requests[1:]}
        assert reasons == {"backpressure"}

    def test_request_expires_while_batched(self, rng):
        """A deadline shorter than the batching window expires, not drops."""
        config = ServeConfig(max_batch_size=8, max_wait_s=1e-3)
        service = GemmService(config)
        request = _request(rng, max_rel_error=1e-2, deadline_s=1e-5)
        responses = service.run([(0.0, request)])
        service.check_accounting()
        response = responses[request.request_id]
        assert response.status is RequestStatus.EXPIRED
        assert response.reason == "deadline-expired"

    def test_impossible_slo_rejected_not_hung(self, rng):
        service = GemmService(ServeConfig(max_wait_s=0.0, max_batch_size=1))
        doomed = _request(rng, max_rel_error=1e-12)
        fine = _request(rng, max_rel_error=1e-2)
        responses = service.run([(0.0, doomed), (0.0, fine)])
        service.check_accounting()
        assert responses[doomed.request_id].status is RequestStatus.REJECTED
        assert "no kernel" in responses[doomed.request_id].reason
        assert responses[fine.request_id].status is RequestStatus.COMPLETED

    def test_empty_k_zero_operands_complete(self):
        """k = 0 is a degenerate-but-valid GEMM: zeros (or C) come back."""
        service = GemmService(ServeConfig(max_wait_s=0.0, max_batch_size=1))
        a = np.zeros((4, 0), dtype=np.float32)
        b = np.zeros((0, 6), dtype=np.float32)
        c = np.arange(24, dtype=np.float32).reshape(4, 6)
        bare = GemmRequest(a=a, b=b, max_rel_error=1e-10)
        with_c = GemmRequest(a=a.copy(), b=b.copy(), c=c, max_rel_error=1e-10)
        responses = service.run([(0.0, bare), (0.0, with_c)])
        service.check_accounting()
        r0, r1 = responses[bare.request_id], responses[with_c.request_id]
        assert r0.status is RequestStatus.COMPLETED
        assert np.array_equal(r0.d, np.zeros((4, 6), dtype=np.float32))
        assert r1.status is RequestStatus.COMPLETED
        assert np.array_equal(r1.d, c)

    def test_admission_control_rejects_over_capacity(self, rng):
        config = ServeConfig(max_in_flight=4, max_wait_s=1e-3, max_batch_size=64)
        service = GemmService(config)
        requests = [_request(rng, max_rel_error=1e-2) for _ in range(10)]
        responses = service.run((0.0, r) for r in requests)
        service.check_accounting()
        rejected = [
            r for r in requests
            if responses[r.request_id].status is RequestStatus.REJECTED
        ]
        assert rejected, "admission control never engaged"
        assert all(responses[r.request_id].reason == "admission-capacity" for r in rejected)

    def test_invalid_requests_raise_typed_errors(self, rng):
        with pytest.raises(ValueError):
            GemmRequest(a=np.zeros((2, 3), np.float32), b=np.zeros((4, 2), np.float32))
        with pytest.raises(ValueError):
            _request(rng, max_rel_error=0.0)
        with pytest.raises(ValueError):
            _request(rng, deadline_s=-1.0)


# ---------------------------------------------------------------------------
# load tests: accounting, determinism, report schema
# ---------------------------------------------------------------------------


class TestLoadTest:
    def test_accounting_identity_and_schema(self):
        service, _ = run_load_test(150, seed=3, arrival="poisson")
        service.check_accounting()
        report = build_report(service, {"requests": 150})
        assert validate_slo_report(report) == []
        counts = report["counts"]
        assert counts["submitted"] == 150
        assert (
            counts["completed"] + counts["rejected"] + counts["expired"] == 150
        )

    def test_deterministic_replay(self):
        def one() -> str:
            service, _ = run_load_test(120, seed=9, arrival="poisson")
            return json.dumps(build_report(service, {}), sort_keys=True)

        assert one() == one()

    def test_closed_loop_resolves_every_request(self):
        service, responses = run_load_test(80, seed=1, arrival="closed", concurrency=8)
        service.check_accounting()
        assert len(responses) == 80

    def test_validator_catches_silent_drops(self):
        service, _ = run_load_test(60, seed=0, arrival="uniform")
        report = build_report(service, {"requests": 60})
        report["counts"]["completed"] -= 1
        assert any("silent drops" in p for p in validate_slo_report(report))
        report["schema"] = "bogus"
        assert any("schema" in p for p in validate_slo_report(report))

    def test_workload_mix_spans_frontier(self):
        """The seeded generator exercises every terminal path and >3 kernels."""
        service, _ = run_load_test(400, seed=0, arrival="poisson")
        assert len(service.routing_mix) >= 3
        assert service.reject_reasons.get("slo-unsatisfiable", 0) > 0
        assert service.expired > 0

    def test_loadgen_requests_are_valid(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            request = make_request(rng)
            assert request.a.dtype == np.float32
            assert request.max_rel_error > 0

    def test_serve_stats_provider_registered(self):
        service, _ = run_load_test(30, seed=5, arrival="uniform")
        provided = get_registry().snapshot()["providers"]["serve.service"]
        assert provided["submitted"] >= 30
        assert service.submitted == 30


# ---------------------------------------------------------------------------
# batcher mechanics
# ---------------------------------------------------------------------------


class TestBatcher:
    def test_window_and_size_triggers(self, rng):
        from repro.serve.router import RoutingDecision

        batcher = DynamicBatcher(max_batch_size=2, max_wait_s=1e-3)
        decision = RoutingDecision(kernel="egemm-tc", error_bound=1e-6, seconds=1e-5)
        r1 = _request(rng, max_rel_error=1e-4)
        r2 = _request(rng, max_rel_error=1e-4)
        assert batcher.add(r1, decision, now=0.0) is None
        assert batcher.next_due() == pytest.approx(1e-3)
        batch = batcher.add(r2, decision, now=5e-4)
        assert batch is not None and batch.size == 2
        assert batcher.pending == 0
        # window path
        r3 = _request(rng, max_rel_error=1e-4)
        assert batcher.add(r3, decision, now=1.0) is None
        assert batcher.due(now=1.0) == []
        (due,) = batcher.due(now=1.0 + 1e-3)
        assert due.size == 1

    def test_incompatible_shapes_never_share_a_batch(self, rng):
        from repro.serve.batcher import compatibility_key
        from repro.serve.router import RoutingDecision

        decision = RoutingDecision(kernel="egemm-tc", error_bound=1e-6, seconds=1e-5)
        r1 = _request(rng, m=16, k=32, n=16)
        r2 = _request(rng, m=32, k=32, n=16)
        assert compatibility_key(r1, decision) != compatibility_key(r2, decision)


# ---------------------------------------------------------------------------
# context-local hooks: single-slot globals made serving-safe
# ---------------------------------------------------------------------------


class TestContextLocalHooks:
    def test_two_instrumented_gemms_on_threads_stay_isolated(self, rng):
        """Two threads, each with its own fault injector: no cross-talk.

        The module-global FAULT_HOOK tier is a single slot — installing
        two injectors concurrently would clobber.  The context-local
        tier gives each thread its own hook; a third, uninstrumented
        thread must see clean bits throughout.
        """
        from repro.emulation import gemm as gemm_module
        from repro.resilience.faults import FaultInjector, FaultSite

        a = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        b = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        clean, _ = EmulatedGemm().run(a, b)

        barrier = threading.Barrier(3)
        results: dict[str, np.ndarray] = {}
        events: dict[str, int] = {}
        errors: list[BaseException] = []

        def instrumented(tag: str, seed: int) -> None:
            try:
                injector = FaultInjector(seed=seed, site=FaultSite.ACCUMULATOR, faults=4)
                with injector.installed(scope="context"):
                    injector.arm(skip=0)
                    barrier.wait(timeout=10)
                    d, _ = EmulatedGemm().run(a, b)
                results[tag] = d
                events[tag] = len(injector.events)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
                barrier.abort()

        def uninstrumented() -> None:
            try:
                barrier.wait(timeout=10)
                d, _ = EmulatedGemm().run(a, b)
                results["clean"] = d
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=instrumented, args=("t1", 1)),
            threading.Thread(target=instrumented, args=("t2", 2)),
            threading.Thread(target=uninstrumented),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        # each instrumented thread observed its own injections...
        assert events["t1"] > 0 and events["t2"] > 0
        assert not np.array_equal(results["t1"], clean)
        assert not np.array_equal(results["t2"], clean)
        # ...the bystander saw clean bits, and the global slot never moved
        assert np.array_equal(results["clean"].view(np.uint32), clean.view(np.uint32))
        assert gemm_module.FAULT_HOOK is None

    def test_context_exec_hook_isolated_across_threads(self):
        """Context-scoped profiling captures only its own thread's launches."""
        from repro.kernels.egemm import EgemmTcKernel
        from repro.obs.profile import collect_executions

        captured: dict[str, int] = {}
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def worker(tag: str, calls: int) -> None:
            try:
                kernel = EgemmTcKernel()
                with collect_executions(scope="context") as traces:
                    barrier.wait(timeout=10)
                    for _ in range(calls):
                        kernel.time(256, 256, 256)
                captured[tag] = len(traces)
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=worker, args=("one", 1)),
            threading.Thread(target=worker, args=("two", 2)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        # Each thread captured exactly its own launches: had the hook
        # leaked through a shared slot, both would see all three calls.
        assert captured["one"] >= 1
        assert captured["two"] == 2 * captured["one"]

    def test_global_scope_still_works_for_campaigns(self, rng):
        """scope='global' keeps the module-slot semantics (helper threads)."""
        from repro.emulation import gemm as gemm_module
        from repro.resilience.faults import FaultInjector, FaultSite

        injector = FaultInjector(seed=0, site=FaultSite.ACCUMULATOR)
        with injector.installed():
            assert gemm_module.FAULT_HOOK is injector
        assert gemm_module.FAULT_HOOK is None
        with pytest.raises(ValueError):
            with injector.installed(scope="bogus"):
                pass  # pragma: no cover
