"""Cross-module integration tests: the public API end to end."""

import numpy as np
import pytest

import repro
from repro import (
    EgemmTcKernel,
    KMeans,
    KnnSearch,
    PrecisionProfiler,
    autotune,
    egemm,
    reference_exact,
    reference_single,
)
from repro.fp.error import max_error
from repro.tensorize.kernel import run_functional
from repro.tensorize.tiling import TilingConfig


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_egemm_front_door(self, small_matrices):
        a, b, c = small_matrices
        d = egemm(a, b, c)
        assert d.dtype == np.float32
        assert max_error(d, reference_exact(a, b, c)) < 1e-4

    def test_egemm_scheme_aliases(self, small_matrices):
        a, b, _ = small_matrices
        assert np.array_equal(egemm(a, b), egemm(a, b, scheme="egemm"))

    def test_egemm_markidis_scheme(self, small_matrices):
        a, b, _ = small_matrices
        d = egemm(a, b, scheme="markidis")
        assert max_error(d, reference_exact(a, b)) < 1e-4

    def test_egemm_unknown_scheme(self, small_matrices):
        a, b, _ = small_matrices
        with pytest.raises(KeyError):
            egemm(a, b, scheme="quad")


class TestCrossPathConsistency:
    def test_three_functional_paths_agree(self, rng):
        """EmulatedGemm (vectorized), run_functional (tiled through the
        simulated hierarchy), and the kernel object must agree to the
        extended-precision level (accumulation orders differ, so bitwise
        equality is not expected — but all are within a few ulps of the
        fp64 reference scaled by the split residual)."""
        a = rng.uniform(-1, 1, (64, 64)).astype(np.float32)
        b = rng.uniform(-1, 1, (64, 64)).astype(np.float32)
        exact = reference_exact(a, b)

        d_vec = egemm(a, b)
        d_tiled = run_functional(a, b, config=TilingConfig(32, 32, 16, 16, 16, 8)).d
        d_kernel = EgemmTcKernel().compute(a, b)

        for d in (d_vec, d_tiled, d_kernel):
            assert max_error(d, exact) < 1e-4
        assert max_error(d_vec, d_tiled) < 1e-4
        assert np.array_equal(d_vec, d_kernel)

    def test_emulation_beats_half_everywhere(self, rng):
        a = rng.uniform(-1, 1, (128, 128)).astype(np.float32)
        b = rng.uniform(-1, 1, (128, 128)).astype(np.float32)
        ref = reference_single(a, b)
        assert max_error(egemm(a, b), ref) * 50 < max_error(egemm(a, b, scheme="half"), ref)


class TestAutotuneIntegration:
    def test_autotune_feeds_kernel(self):
        result = autotune()
        kernel = EgemmTcKernel(tiling=result.best)
        assert kernel.tflops(4096, 4096, 4096) > 8.0


class TestWorkflowIntegration:
    def test_profile_then_emulate(self):
        """The paper's end-to-end story: profile the core, confirm
        extended-precision internals, then rely on the 4-call emulation."""
        result = PrecisionProfiler().run(trials=100)
        assert result.correct_probes()  # profiling validates the design
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        b = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        assert max_error(egemm(a, b), reference_exact(a, b)) < 1e-4


class TestAppsOnPublicApi:
    def test_kmeans_pipeline(self, rng):
        x = np.vstack(
            [c + rng.normal(0, 0.2, (40, 8)) for c in rng.normal(0, 4, (3, 8))]
        ).astype(np.float32)
        model = KMeans(3, seed=1).fit(x)
        assert len(np.unique(model.predict(x))) == 3

    def test_knn_pipeline(self, rng):
        ref = rng.normal(0, 1, (80, 6)).astype(np.float32)
        d, i = KnnSearch(3).fit(ref).kneighbors(ref[:5])
        assert i.shape == (5, 3)
        assert np.array_equal(i[:, 0], np.arange(5))
