"""Tests for the SASS layer (repro.gpu.sass) and the EGEMM code
generator (repro.tensorize.codegen)."""

import pytest

from repro.gpu.sass import RZ, Reg, SassInstr, SassListing, SassValidationError, validate
from repro.tensorize.codegen import build_register_map, generate_iteration_sass
from repro.tensorize.plan import TensorizationPlan
from repro.tensorize.tiling import T4_TILING


class TestReg:
    def test_range_validation(self):
        with pytest.raises(ValueError):
            Reg(256)
        with pytest.raises(ValueError):
            Reg(-1)

    def test_rz(self):
        assert str(RZ) == "RZ"
        assert RZ.is_rz
        assert str(Reg(7)) == "R7"

    def test_span(self):
        assert [r.index for r in Reg(4).span(4)] == [4, 5, 6, 7]


class TestSassInstr:
    def test_control_word_rendering(self):
        i = SassInstr(opcode="LDG.E.128", stall=2, wrtdb=0, watdb=0b10)
        cw = i.control_word
        assert cw.startswith("[B-1----")
        assert ":W0:" in cw
        assert cw.endswith("S02]")

    def test_render_full_line(self):
        i = SassInstr(
            opcode="HMMA.1688.F32",
            dests=Reg(8).span(4),
            srcs=(Reg(4), Reg(5), Reg(6), *Reg(8).span(4)),
            operands="R4, R6, R8",
        )
        line = i.render()
        assert line.endswith(";")
        assert "HMMA.1688.F32" in line

    def test_control_validation(self):
        with pytest.raises(ValueError):
            SassInstr(opcode="NOP", stall=16)
        with pytest.raises(ValueError):
            SassInstr(opcode="NOP", wrtdb=6)
        with pytest.raises(ValueError):
            SassInstr(opcode="NOP", watdb=64)


class TestValidate:
    def test_read_before_write_rejected(self):
        listing = SassListing(name="bad")
        listing.emit(SassInstr(opcode="FADD", dests=(Reg(0),), srcs=(Reg(1),)))
        with pytest.raises(SassValidationError, match="read before write"):
            validate(listing)

    def test_live_in_exempts_context(self):
        listing = SassListing(name="ok", live_in=frozenset({1}))
        listing.emit(SassInstr(opcode="FADD", dests=(Reg(0),), srcs=(Reg(1),)))
        validate(listing)

    def test_register_budget(self):
        listing = SassListing(name="fat", live_in=frozenset({250}))
        listing.emit(SassInstr(opcode="MOV", dests=(Reg(250),)))
        with pytest.raises(SassValidationError, match="budget"):
            validate(listing, max_registers=232)

    def test_wait_without_set_rejected(self):
        listing = SassListing(name="bar")
        listing.emit(SassInstr(opcode="NOP", watdb=0b1))
        with pytest.raises(SassValidationError, match="barrier"):
            validate(listing)

    def test_barrier_set_then_wait_ok(self):
        listing = SassListing(name="ok", live_in=frozenset({0}))
        listing.emit(SassInstr(opcode="LDG.E.128", dests=(Reg(4),), srcs=(Reg(0),), wrtdb=0))
        listing.emit(SassInstr(opcode="STS.128", srcs=(Reg(4),), watdb=0b1))
        validate(listing)

    def test_rz_always_allowed(self):
        listing = SassListing(name="rz")
        listing.emit(SassInstr(opcode="MOV", dests=(Reg(0),), srcs=(RZ,)))
        validate(listing)


class TestRegisterMap:
    def test_paper_total_232(self):
        assert build_register_map(T4_TILING).total == 232

    def test_banks_disjoint(self):
        rm = build_register_map(T4_TILING)
        banks = [
            set(range(rm.c_base, rm.c_base + rm.c_count)),
            set(range(rm.frag_base[0], rm.frag_base[0] + rm.frag_count)),
            set(range(rm.frag_base[1], rm.frag_base[1] + rm.frag_count)),
            set(range(rm.stage_base[0], rm.stage_base[0] + rm.stage_count)),
            set(range(rm.stage_base[1], rm.stage_base[1] + rm.stage_count)),
            set(range(rm.addr_base, rm.addr_base + rm.addr_count)),
            set(range(rm.context_base, rm.context_base + rm.context_count)),
        ]
        union = set()
        for bank in banks:
            assert not (union & bank)
            union |= bank
        assert len(union) == rm.total

    def test_under_the_hardware_ceiling(self):
        rm = build_register_map(T4_TILING)
        assert rm.context_base + rm.context_count <= 256


class TestGeneratedSass:
    @pytest.fixture(scope="class", params=[True, False], ids=["pipelined", "naive"])
    def listing(self, request):
        return generate_iteration_sass(latency_hiding=request.param)

    def test_validates(self, listing):
        validate(listing, max_registers=256)

    def test_instruction_counts_match_plan(self, listing):
        """The per-warp SASS counts equal the plan's per-block counts
        divided by the warp count."""
        plan = TensorizationPlan(8192, 8192, 8192, T4_TILING)
        warps = T4_TILING.warps_per_block
        assert listing.count("HMMA") == plan.hmma_per_iteration(4) // warps
        assert listing.count("LDG") == plan.ldg_per_iteration() // warps
        assert listing.count("STS") == plan.sts_per_iteration() // warps
        assert listing.count("BAR") == 1

    def test_registers_within_stage_budget(self, listing):
        assert listing.max_register() < 232

    def test_render_round_trip_lines(self, listing):
        text = listing.render()
        lines = text.splitlines()
        assert lines[0].startswith("//")
        assert len(lines) == len(listing) + 1
        assert all(line.endswith(";") for line in lines[1:])

    def test_pipelined_interleaves_ldg(self):
        """Figure 6: in the pipelined listing LDGs sit *between* HMMAs;
        in the naive one they all follow the math."""

        def positions(listing, prefix):
            return [i for i, ins in enumerate(listing) if ins.opcode.startswith(prefix)]

        pipelined = generate_iteration_sass(latency_hiding=True)
        naive = generate_iteration_sass(latency_hiding=False)
        p_ldg, p_hmma = positions(pipelined, "LDG"), positions(pipelined, "HMMA")
        n_ldg, n_hmma = positions(naive, "LDG"), positions(naive, "HMMA")
        # pipelined: at least one LDG before the last HMMA
        assert min(p_ldg) < max(p_hmma)
        # naive: every LDG after every HMMA
        assert min(n_ldg) > max(n_hmma)

    def test_sts_waits_on_ldg_barrier(self):
        listing = generate_iteration_sass(latency_hiding=True)
        sts = [i for i in listing if i.opcode.startswith("STS")]
        assert any(i.watdb & 0b1 for i in sts)

    def test_first_hmma_of_step_waits_on_lds(self):
        listing = generate_iteration_sass(latency_hiding=True)
        hmma = [i for i in listing if i.opcode.startswith("HMMA")]
        assert hmma[0].watdb & 0b10
