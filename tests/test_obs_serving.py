"""Tests for serving-scale observability: flight recorder, burn-rate
monitoring, per-request tracing, and the lifecycle postmortem.

Covers the contracts the serving stack and CI lean on: bounded
byte-deterministic flight logs, >=99% admission→route→batch→execute
span-chain coverage on seeded load tests, postmortem reconstruction
determinism, Chrome-trace schema validity of the virtual-time export,
exact histogram quantiles, durable provider re-registration across
registry resets, and trace-context isolation between concurrent
requests (threads and the contextvars hook tier).
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.obs.export import validate_chrome_trace
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    format_lifecycle,
    load_flight_log,
    reconstruct_lifecycle,
    validate_flight_log,
)
from repro.obs.flight import main as postmortem_main
from repro.obs.hooks import fault_hook_override, local_fault_hook
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.serving import ServeObserver
from repro.obs.slo import BurnRateMonitor, BurnWindow
from repro.obs.tracing import configure, current_span_id, get_tracer
from repro.serve import ServeConfig, build_report, run_load_test, validate_slo_report


# --- flight recorder ---------------------------------------------------------
class TestFlightRecorder:
    def test_capacity_bound_and_drop_accounting(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("expire", float(i), request_id=i)
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.dropped == 6
        # the ring keeps the newest window
        assert [e["request_id"] for e in rec.events()] == [6, 7, 8, 9]

    def test_unknown_kind_rejected(self):
        rec = FlightRecorder()
        with pytest.raises(ValueError, match="unknown flight event kind"):
            rec.record("teleport", 0.0)

    def test_dump_load_validate_roundtrip(self, tmp_path):
        rec = FlightRecorder()
        rec.record("admit", 1e-6, request_id=0, shape=[4, 4, 4],
                   max_rel_error=1e-4, deadline_s=None, priority=0,
                   reliable=False)
        rec.record("route", 2e-6, request_id=0, kernel="egemm-tc",
                   error_bound=1e-6, seconds=1e-5, rejected_cheaper=[])
        path = tmp_path / "flight.jsonl"
        rec.dump_jsonl(path)
        records = load_flight_log(path)
        assert records[0]["kind"] == "header"
        assert records[0]["schema"] == FLIGHT_SCHEMA
        assert validate_flight_log(records) == []

    def test_validation_catches_corruption(self, tmp_path):
        rec = FlightRecorder()
        rec.record("expire", 1e-6, request_id=3)
        path = tmp_path / "flight.jsonl"
        rec.dump_jsonl(path)
        records = load_flight_log(path)
        # wrong schema
        bad = [dict(records[0], schema="nope")] + records[1:]
        assert any("schema" in p for p in validate_flight_log(bad))
        # unknown kind
        bad = records + [{"seq": 99, "t": 1.0, "kind": "warp-drive"}]
        assert any("unknown kind" in p for p in validate_flight_log(bad))
        # missing required field
        bad = records + [{"seq": 99, "t": 1.0, "kind": "expire"}]
        assert any("missing 'request_id'" in p for p in validate_flight_log(bad))
        # non-monotone seq
        bad = records + [{"seq": -5, "t": 1.0, "kind": "expire", "request_id": 1}]
        assert any("not increasing" in p for p in validate_flight_log(bad))
        assert validate_flight_log([]) == ["empty flight log"]


# --- burn-rate monitor -------------------------------------------------------
class TestBurnRateMonitor:
    WINDOW = (BurnWindow(long_s=1e-3, short_s=2.5e-4, threshold=10.0),)

    def test_healthy_stream_never_alerts(self):
        mon = BurnRateMonitor("latency", target=0.99, windows=self.WINDOW)
        for i in range(200):
            mon.observe(i * 1e-5, good=True)
        summary = mon.summary()
        assert summary["alerts"] == 0
        assert summary["compliant"] is True
        assert summary["bad_fraction"] == 0.0

    def test_brownout_fires_once_per_episode(self):
        rec = FlightRecorder()
        mon = BurnRateMonitor("latency", target=0.99, windows=self.WINDOW,
                              recorder=rec)
        t = 0.0
        for i in range(50):  # healthy warmup
            t += 1e-5
            mon.observe(t, good=True)
        raised = []
        for i in range(50):  # sustained brownout: everything bad
            t += 1e-5
            raised.extend(mon.observe(t, good=False))
        # rising edge only: one alert, latched for the whole episode
        assert len(raised) == 1
        assert mon.summary()["alerts"] == 1
        alerts = rec.events(kind="alert")
        assert len(alerts) == 1
        assert alerts[0]["monitor"] == "latency"
        assert alerts[0]["burn_long"] > 10.0

    def test_unlatch_then_fresh_episode_realerts(self):
        mon = BurnRateMonitor("latency", target=0.99, windows=self.WINDOW)
        t = 0.0
        for good_phase in (False, True, False):
            for i in range(60):
                t += 1e-5
                mon.observe(t, good=good_phase)
        # two distinct brownouts, separated by a clean recovery window
        assert mon.summary()["alerts"] == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            BurnRateMonitor("x", target=1.0)
        with pytest.raises(ValueError, match="short window"):
            BurnWindow(long_s=1e-4, short_s=1e-3, threshold=1.0)
        with pytest.raises(ValueError, match="positive"):
            BurnWindow(long_s=-1.0, short_s=-2.0, threshold=1.0)


# --- histogram exact quantiles (satellite) -----------------------------------
class TestHistogramQuantiles:
    def test_empty_returns_none(self):
        assert Histogram().quantile(0.5) is None

    def test_single_sample_every_quantile(self):
        h = Histogram()
        h.observe(7.5)
        assert h.quantile(0.0) == 7.5
        assert h.quantile(0.5) == 7.5
        assert h.quantile(1.0) == 7.5

    def test_two_samples_interpolate(self):
        h = Histogram()
        h.observe(10.0)
        h.observe(20.0)
        assert h.quantile(0.0) == 10.0
        assert h.quantile(0.5) == 15.0
        assert h.quantile(1.0) == 20.0
        assert h.quantile(0.25) == pytest.approx(12.5)

    def test_matches_numpy_percentile(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(1.0, 500)
        h = Histogram()
        for v in values:
            h.observe(float(v))
        for q in (0.01, 0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(
                float(np.percentile(values, q * 100)), rel=1e-12
            )

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_sample_limit_truncation_flagged(self):
        h = Histogram(sample_limit=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["samples_truncated"] is True
        assert h.quantile(1.0) == 3.0  # only the retained window participates
        h.reset()
        assert h.quantile(0.5) is None


# --- durable providers across reset (satellite) ------------------------------
class TestDurableProviders:
    def test_reset_reinstalls_durable_provider(self):
        reg = MetricsRegistry()
        reg.register_provider("sub.stats", lambda: {"x": 1}, durable=True)
        reg.unregister_provider("sub.stats")
        assert "sub.stats" not in reg.snapshot()["providers"]
        reg.reset()
        assert reg.snapshot()["providers"]["sub.stats"] == {"x": 1}

    def test_non_durable_provider_stays_gone(self):
        reg = MetricsRegistry()
        reg.register_provider("tmp.stats", lambda: {"y": 2}, durable=False)
        reg.unregister_provider("tmp.stats")
        reg.reset()
        assert "tmp.stats" not in reg.snapshot()["providers"]

    def test_reregistration_replaces_both_tiers(self):
        reg = MetricsRegistry()
        reg.register_provider("sub.stats", lambda: {"v": 1})
        reg.register_provider("sub.stats", lambda: {"v": 2})
        reg.unregister_provider("sub.stats")
        reg.reset()
        assert reg.snapshot()["providers"]["sub.stats"] == {"v": 2}

    def test_durable_unregister_forgets_for_good(self):
        reg = MetricsRegistry()
        reg.register_provider("sub.stats", lambda: {"v": 1})
        reg.unregister_provider("sub.stats", durable=True)
        reg.reset()
        assert "sub.stats" not in reg.snapshot()["providers"]

    def test_reset_does_not_clobber_live_replacement(self):
        reg = MetricsRegistry()
        reg.register_provider("sub.stats", lambda: {"v": 1})
        reg.register_provider("sub.stats", lambda: {"v": 3}, durable=False)
        reg.reset()  # the live (newer) provider wins over the durable default
        assert reg.snapshot()["providers"]["sub.stats"] == {"v": 3}


# --- seeded load test through the observer -----------------------------------
def _observed_run(requests=150, seed=3):
    observer = ServeObserver()
    config = ServeConfig(max_in_flight=64)
    service, responses = run_load_test(
        requests, seed=seed, arrival="poisson", config=config, observer=observer
    )
    return observer, service, responses


@pytest.fixture(scope="module")
def observed():
    return _observed_run()


class TestServeObserverLoadTest:
    def test_chain_coverage_at_least_99_percent(self, observed):
        observer, _, _ = observed
        chain = observer.chain_report()
        assert chain["completed"] > 0
        assert chain["coverage"] >= 0.99

    def test_flight_log_accounts_for_every_request(self, observed):
        observer, service, _ = observed
        admits = observer.recorder.events(kind="admit")
        terminal = (observer.recorder.events(kind="complete")
                    + observer.recorder.events(kind="reject")
                    + observer.recorder.events(kind="expire"))
        assert len(admits) + len(observer.recorder.events(kind="reject")) >= len(
            terminal
        )
        stats = service.stats()
        assert len(terminal) == stats["submitted"]

    def test_report_schema_valid_with_observer_blocks(self, observed):
        observer, service, _ = observed
        report = build_report(service, {"requests": 150}, observer=observer)
        assert validate_slo_report(report) == []
        assert report["slo_monitor"]["latency"]["total"] > 0
        assert "flight_recorder" in report["slo_monitor"]
        assert report["trace_chain"]["coverage"] >= 0.99
        # units satellite: the block documents the virtual-time contract
        assert "virtual seconds" in report["units"]["devices.busy_s"]
        for name, dev in report["devices"].items():
            assert dev["utilization"] == pytest.approx(
                dev["busy_s"] / report["virtual_s"]
            )
            assert 0.0 <= dev["utilization"] <= 1.0

    def test_chrome_trace_schema_valid(self, observed):
        observer, _, _ = observed
        events = observer.chrome_trace_events()
        count = validate_chrome_trace({"traceEvents": events})
        assert count == len(events) > 0
        cats = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"serve.request", "serve.batch", "serve.exec"} <= cats
        # the trace axis is the virtual clock in microseconds
        execs = [e for e in events if e.get("cat") == "serve.exec"]
        assert execs and all(e["ts"] >= 0 for e in execs)

    def test_route_events_carry_rejected_cheaper(self, observed):
        observer, _, _ = observed
        routes = observer.recorder.events(kind="route")
        assert routes
        # the strict SLO tiers force the router past cheaper kernels
        assert any(r["rejected_cheaper"] for r in routes)

    def test_flight_log_byte_stable_across_same_seed_runs(self, tmp_path):
        paths = []
        for i in range(2):
            observer, _, _ = _observed_run()
            path = tmp_path / f"flight{i}.jsonl"
            observer.recorder.dump_jsonl(path)  # no manifest: pure event bytes
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_postmortem_identical_across_same_seed_runs(self, tmp_path):
        renderings = []
        for i in range(2):
            observer, _, responses = _observed_run()
            path = tmp_path / f"flight{i}.jsonl"
            observer.recorder.dump_jsonl(path)
            records = load_flight_log(path)
            assert validate_flight_log(records) == []
            completed = [rid for rid, r in responses.items()
                         if r.status.value == "completed"]
            rid = sorted(completed)[len(completed) // 2]
            renderings.append(format_lifecycle(reconstruct_lifecycle(records, rid)))
        assert renderings[0] == renderings[1]
        # the lifecycle tells the whole story
        assert "admit" in renderings[0]
        assert "route" in renderings[0]
        assert "batch_form" in renderings[0]
        assert "exec" in renderings[0]
        assert "complete" in renderings[0]

    def test_postmortem_cli_exit_codes(self, tmp_path, capsys):
        observer, _, responses = _observed_run(requests=40, seed=1)
        log = tmp_path / "flight.jsonl"
        observer.recorder.dump_jsonl(log)
        completed = sorted(rid for rid, r in responses.items()
                           if r.status.value == "completed")
        assert postmortem_main([str(completed[0]), "--log", str(log)]) == 0
        out = capsys.readouterr().out
        assert f"request {completed[0]}" in out
        # unknown request id
        assert postmortem_main(["999999", "--log", str(log)]) == 2
        # schema-corrupt log
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"seq": 0, "t": 0.0, "kind": "expire"}) + "\n")
        assert postmortem_main(["0", "--log", str(bad)]) == 1
        # missing file
        assert postmortem_main(["0", "--log", str(tmp_path / "nope.jsonl")]) == 2

    def test_fault_events_recordable(self, observed):
        from repro.resilience.faults import FaultEvent, FaultSite

        observer, _, _ = observed
        before = len(observer.recorder.events(kind="fault"))
        event = FaultEvent(site=FaultSite.ACCUMULATOR.value, call_index=3,
                           flat_index=7, bit=12, before=1.0, after=-1.0,
                           span_id=42)
        observer.record_fault(1e-4, event)
        faults = observer.recorder.events(kind="fault")
        assert len(faults) == before + 1
        assert faults[-1]["span_id"] == 42
        assert faults[-1]["site"] == FaultSite.ACCUMULATOR.value


# --- trace-context isolation under concurrency (satellite) -------------------
class TestTraceContextIsolation:
    @pytest.fixture
    def tracer(self):
        t = get_tracer()
        prev = t.enabled
        t.clear()
        configure(True)
        yield t
        configure(prev)
        t.clear()

    def test_no_span_leakage_between_interleaved_threads(self, tracer):
        """Interleaved per-thread span stacks never cross-parent."""
        barrier = threading.Barrier(4)
        errors: list[str] = []

        def worker(name: str) -> None:
            try:
                with tracer.span(f"request.{name}") as outer:
                    barrier.wait(timeout=10)  # all outers open simultaneously
                    with tracer.span(f"execute.{name}") as inner:
                        if inner.parent_id != outer.span_id:
                            errors.append(f"{name}: cross-thread parent")
                        if current_span_id() != inner.span_id:
                            errors.append(f"{name}: wrong active span")
                    barrier.wait(timeout=10)
                if current_span_id() != 0:
                    errors.append(f"{name}: span leaked past its scope")
            except Exception as exc:  # surface thread failures to the test
                errors.append(f"{name}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        spans = {s.name: s for s in tracer.spans()}
        for i in range(4):
            assert spans[f"execute.t{i}"].parent_id == spans[f"request.t{i}"].span_id

    def test_contextvars_hook_tier_isolated_across_threads(self):
        """scope='context' hooks installed per thread never interleave."""
        barrier = threading.Barrier(3)
        collected: dict[str, list] = {f"t{i}": [] for i in range(3)}
        errors: list[str] = []

        def worker(name: str) -> None:
            try:
                with local_fault_hook(collected[name].append):
                    barrier.wait(timeout=10)  # all overrides live at once
                    hook = fault_hook_override(None)
                    for i in range(20):
                        hook((name, i))
                    barrier.wait(timeout=10)
                if fault_hook_override(None) is not None:
                    errors.append(f"{name}: hook leaked past its scope")
            except Exception as exc:
                errors.append(f"{name}: {exc!r}")

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        for name, events in collected.items():
            assert len(events) == 20
            assert all(tag == name for tag, _ in events)

    def test_concurrent_observed_load_tests_do_not_cross_talk(self, tmp_path):
        """Two same-seed services on concurrent threads stay independent."""
        reference, _, _ = _observed_run(requests=60, seed=9)
        results: dict[int, ServeObserver] = {}
        errors: list[str] = []

        def worker(i: int) -> None:
            try:
                observer, _, _ = _observed_run(requests=60, seed=9)
                results[i] = observer
            except Exception as exc:
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert errors == []
        ref_path = tmp_path / "ref.jsonl"
        reference.recorder.dump_jsonl(ref_path)
        for i, observer in results.items():
            path = tmp_path / f"run{i}.jsonl"
            observer.recorder.dump_jsonl(path)
            assert path.read_bytes() == ref_path.read_bytes()

    def test_parallel_map_preserves_caller_span_context(self, tracer):
        """A sweep inside a span leaves the caller's context untouched."""
        from repro.perf.parallel import parallel_map

        with tracer.span("sweep.outer") as outer:
            out = parallel_map(lambda x: x * x, [1, 2, 3])
            assert out == [1, 4, 9]
            assert current_span_id() == outer.span_id
        assert current_span_id() == 0
