"""Tests for the power/subspace iteration applications."""

import numpy as np
import pytest

from repro.apps.power_iteration import PowerIteration, SubspaceIteration
from repro.kernels.cublas import CublasCudaFp32, CublasTcHalf
from repro.kernels.egemm import EgemmTcKernel


def _spd_matrix(rng, n=48, spectrum=None):
    """Symmetric matrix with a controlled spectrum."""
    q, _ = np.linalg.qr(rng.normal(0, 1, (n, n)))
    if spectrum is None:
        spectrum = np.linspace(1.0, 10.0, n)
    a = (q * spectrum) @ q.T
    return a.astype(np.float32), np.sort(spectrum)[::-1], q


class TestPowerIteration:
    def test_finds_dominant_eigenpair(self, rng):
        a, spectrum, _ = _spd_matrix(rng)
        result = PowerIteration(max_iter=500, tol=1e-5).fit(a)
        assert result.eigenvalue_ == pytest.approx(spectrum[0], rel=1e-3)
        # eigenvector check: A v ~= lambda v
        v = result.eigenvector_
        assert np.linalg.norm(a @ v - result.eigenvalue_ * v) < 1e-2

    def test_residuals_decrease(self, rng):
        a, _, _ = _spd_matrix(rng)
        result = PowerIteration(max_iter=60, tol=0.0).fit(a)
        # overall decreasing trend (allow local plateaus)
        assert result.residuals_[-1] < result.residuals_[0]

    def test_kernel_swap_agrees_with_fp32(self, rng):
        a, _, _ = _spd_matrix(rng)
        lam_e = PowerIteration(kernel=EgemmTcKernel(), max_iter=300).fit(a).eigenvalue_
        lam_f = PowerIteration(kernel=CublasCudaFp32(), max_iter=300).fit(a).eigenvalue_
        assert lam_e == pytest.approx(lam_f, rel=1e-4)

    def test_half_precision_less_accurate(self, rng):
        """Iterative amplification: half-GEMM's eigenvalue estimate sits
        measurably further from the truth than the emulated one."""
        # Well-separated dominant eigenvalue so both runs fully converge;
        # the residual difference is then purely the GEMM precision.
        spectrum = np.concatenate([[8.0], np.linspace(1.0, 4.0, 63)])
        a, spec_sorted, _ = _spd_matrix(rng, n=64, spectrum=spectrum)
        truth = spec_sorted[0]
        err_e = abs(PowerIteration(kernel=EgemmTcKernel(), max_iter=400).fit(a).eigenvalue_ - truth)
        err_h = abs(PowerIteration(kernel=CublasTcHalf(), max_iter=400).fit(a).eigenvalue_ - truth)
        assert err_e < err_h

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PowerIteration().fit(rng.normal(0, 1, (4, 5)).astype(np.float32))
        with pytest.raises(ValueError):
            PowerIteration().fit(np.zeros((4, 4), dtype=np.float32))


class TestSubspaceIteration:
    def test_recovers_top_q_spectrum(self, rng):
        a, spectrum, _ = _spd_matrix(rng, n=40)
        result = SubspaceIteration(q=3, max_iter=300, tol=1e-8).fit(a)
        assert np.allclose(result.eigenvalues_[:3], spectrum[:3], rtol=1e-3)

    def test_basis_orthonormal(self, rng):
        a, _, _ = _spd_matrix(rng, n=32)
        result = SubspaceIteration(q=4).fit(a)
        gram = result.basis_.T @ result.basis_
        assert np.allclose(gram, np.eye(4), atol=1e-4)

    def test_invariance_residual(self, rng):
        a, _, _ = _spd_matrix(rng, n=32)
        r = SubspaceIteration(q=2, max_iter=300, tol=1e-8).fit(a)
        resid = a @ r.basis_ - r.basis_ * r.eigenvalues_[:2]
        assert np.linalg.norm(resid) < 1e-2

    def test_validation(self, rng):
        a, _, _ = _spd_matrix(rng, n=8)
        with pytest.raises(ValueError):
            SubspaceIteration(q=0).fit(a)
        with pytest.raises(ValueError):
            SubspaceIteration(q=9).fit(a)
        with pytest.raises(ValueError):
            SubspaceIteration(q=2).fit(a[:4])


class TestFig6Experiment:
    def test_runs_and_shows_speedup(self):
        from repro.experiments.fig6 import run_fig6

        result = run_fig6(n=256, width=60)
        assert result.speedup > 1.05
        assert "tensor" in result.pipelined_timeline
        assert "egemm_iteration_pipelined" in result.pipelined_sass_head
        assert "egemm_iteration_naive" in result.naive_sass_head
