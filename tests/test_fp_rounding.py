"""Unit tests for repro.fp.rounding — mantissa-width rounding primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fp.rounding import (
    round_to_mantissa,
    split_scale,
    to_half,
    to_single,
    truncate_to_mantissa,
)

finite_floats = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False).filter(lambda v: v != 0)


class TestRoundToMantissa:
    def test_exact_values_unchanged(self):
        # 1.5 = 1.1b needs one mantissa bit.
        for bits in (1, 5, 10, 23):
            assert float(round_to_mantissa(1.5, bits)) == 1.5

    def test_matches_fp16_for_10_bits_normal_range(self, rng):
        x = rng.uniform(0.5, 2.0, 1000)
        ours = round_to_mantissa(x, 10)
        theirs = x.astype(np.float16).astype(np.float64)
        assert np.array_equal(ours, theirs)

    def test_matches_fp32_for_23_bits_normal_range(self, rng):
        x = rng.uniform(0.5, 2.0, 1000)
        assert np.array_equal(round_to_mantissa(x, 23), x.astype(np.float32).astype(np.float64))

    def test_ties_to_even(self):
        # 1 + 1.5*2^-10: exactly halfway between 1+2^-10 and 1+2^-9 at
        # 10-bit precision -> rounds to the even mantissa (1 + 2^-9).
        x = 1.0 + 1.5 * 2.0**-10
        assert float(round_to_mantissa(x, 10)) == 1.0 + 2.0**-9
        # 1 + 0.5*2^-10 is halfway between 1 and 1+2^-10 -> even is 1.0.
        x = 1.0 + 0.5 * 2.0**-10
        assert float(round_to_mantissa(x, 10)) == 1.0

    def test_error_bound(self, rng):
        x = rng.uniform(-4, 4, 10000)
        q = round_to_mantissa(x, 10)
        # |x - q| <= 0.5 ulp = 2^-11 * 2^ceil(log2 |x|).
        scale = 2.0 ** np.ceil(np.log2(np.abs(x)))
        assert np.all(np.abs(x - q) <= 0.5 * scale * 2.0**-10 + 1e-300)

    def test_zero_and_inf_passthrough(self):
        assert float(round_to_mantissa(0.0, 10)) == 0.0
        assert np.isinf(round_to_mantissa(np.inf, 10))
        assert np.isneginf(round_to_mantissa(-np.inf, 10))

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            round_to_mantissa(1.0, -1)

    @given(finite_floats, st.integers(0, 30))
    def test_idempotent(self, x, bits):
        once = round_to_mantissa(x, bits)
        assert np.array_equal(round_to_mantissa(once, bits), once)

    @given(finite_floats)
    def test_monotone_precision(self, x):
        """More mantissa bits never increases the rounding error."""
        errs = [abs(float(round_to_mantissa(x, b)) - x) for b in (5, 10, 15, 20)]
        assert errs == sorted(errs, reverse=True)


class TestTruncateToMantissa:
    def test_truncates_toward_zero_positive(self):
        x = 1.0 + 2.0**-10 + 2.0**-12  # bits beyond 10 get chopped
        assert float(truncate_to_mantissa(x, 10)) == 1.0 + 2.0**-10

    def test_truncates_toward_zero_negative(self):
        x = -(1.0 + 2.0**-10 + 2.0**-12)
        assert float(truncate_to_mantissa(x, 10)) == -(1.0 + 2.0**-10)

    @given(finite_floats)
    def test_magnitude_never_increases(self, x):
        t = float(truncate_to_mantissa(x, 10))
        assert abs(t) <= abs(x)

    @given(finite_floats)
    def test_truncation_error_worse_or_equal_rounding(self, x):
        r = abs(float(round_to_mantissa(x, 10)) - x)
        t = abs(float(truncate_to_mantissa(x, 10)) - x)
        assert r <= t + 1e-300

    def test_error_bound_one_ulp(self, rng):
        x = rng.uniform(1.0, 2.0, 10000)
        t = truncate_to_mantissa(x, 10)
        assert np.all(x - t >= 0)
        assert np.all(x - t < 2.0**-10)


class TestConversions:
    def test_to_half_range_effects(self):
        assert np.isinf(to_half(1e6))  # above fp16 max
        assert float(to_half(65504.0)) == 65504.0

    def test_to_single_exact_for_half_values(self, rng):
        x = rng.uniform(-100, 100, 100).astype(np.float16).astype(np.float64)
        assert np.array_equal(to_single(x), x)

    def test_split_scale_quantum(self):
        # For x ~ 1.x, the fp16 high part has ulp 2^-10 -> quantum 2^-10.
        assert float(split_scale(1.3)) == pytest.approx(2.0**-10)
        assert float(split_scale(2.5)) == pytest.approx(2.0**-9)
