"""Fleet chaos engineering: fault injection, recovery, and degradation.

Covers the acceptance contract of ``repro.serve.chaos`` +
``repro.serve.recovery``:

* :class:`BackoffPolicy` — capped exponential schedule, deterministic
  seeded jitter, and exact equivalence with the legacy
  :class:`ResilientRunner` formula;
* fleet exhaustion — ``WorkerPool.select`` raises the typed error when
  zero healthy devices remain, and the service resolves the affected
  batches as explicit FAILED responses (never a hang or a drop);
* recovery mechanics in the event loop — hedge first-wins with
  bit-identical winners, retry-then-expire for requeued batches whose
  deadline passes in backoff, retry exhaustion, crash requeue-and-drain;
* the 4-term accounting identity ``submitted == completed + rejected +
  expired + failed`` and zero silent drops across the scenario
  catalogue (hypothesis property);
* fault-free byte-identity: arming recovery without faults changes no
  response bit;
* flight-log round trip: chaos/retry/requeue events validate and
  reconstruct;
* the shared-memory process pool surviving killed workers.
"""

from __future__ import annotations

import json
import logging
import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.spec import get_gpu
from repro.obs.flight import reconstruct_lifecycle, validate_flight_log
from repro.resilience.backoff import BackoffPolicy
from repro.resilience.faults import FLEET_FAULT_KINDS, FleetFaultEvent
from repro.resilience.runner import ResilientRunner
from repro.serve import (
    ChaosSchedule,
    FleetExhaustedError,
    GemmRequest,
    GemmService,
    RecoveryConfig,
    RequestStatus,
    ServeConfig,
    run_campaign,
    validate_chaos_report,
)
from repro.serve.chaos import chaos_arrivals, run_scenario
from repro.serve.soa import RequestTable
from repro.serve.workers import DeviceWorker, WorkerPool


def _request(rng, m=16, k=16, n=16, **kwargs) -> GemmRequest:
    a = rng.uniform(-1, 1, (m, k)).astype(np.float32)
    b = rng.uniform(-1, 1, (k, n)).astype(np.float32)
    return GemmRequest(a=a, b=b, **kwargs)


def _bits(x: np.ndarray) -> np.ndarray:
    return np.asarray(x, dtype=np.float32).view(np.uint32)


# ---------------------------------------------------------------------------
# backoff policy
# ---------------------------------------------------------------------------


class TestBackoffPolicy:
    def test_capped_exponential_schedule(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=0.5, multiplier=2.0,
                               max_retries=5)
        assert policy.delay(0) == 0.0
        assert policy.schedule() == (0.1, 0.2, 0.4, 0.5, 0.5)

    def test_matches_legacy_runner_formula(self):
        """Runner attempt ``i`` slept min(b * 2**(i-2), cap); the policy
        reproduces it exactly as ``delay(i - 1)``."""
        base, cap = 0.05, 1.0
        policy = BackoffPolicy(base_s=base, cap_s=cap, multiplier=2.0,
                               max_retries=8)
        for i in range(2, 10):
            assert policy.delay(i - 1) == min(base * 2 ** (i - 2), cap)

    def test_runner_builds_policy_from_legacy_fields(self):
        runner = ResilientRunner(backoff_s=0.02, backoff_cap_s=0.3,
                                 attempts_per_kernel=4)
        assert isinstance(runner.backoff, BackoffPolicy)
        assert runner.backoff.base_s == 0.02
        assert runner.backoff.cap_s == 0.3
        assert runner.backoff.max_retries == 3
        assert runner.backoff.jitter == 0.0  # legacy schedule, no spread

    def test_jitter_bounded_and_deterministic(self):
        policy = BackoffPolicy(base_s=1e-3, cap_s=1e-2, multiplier=2.0,
                               max_retries=4, jitter=0.25, seed=3)
        for attempt in (1, 2, 3, 4):
            raw = min(1e-3 * 2.0 ** (attempt - 1), 1e-2)
            d = policy.delay(attempt, key=17)
            assert raw * 0.75 <= d <= raw * 1.25
            assert d == policy.delay(attempt, key=17)  # replayable
        # distinct keys decorrelate (not all draws can collide)
        draws = {policy.delay(1, key=k) for k in range(16)}
        assert len(draws) > 1
        # string keys hash stably (CRC-32, not salted hash())
        assert policy.delay(2, key="egemm-tc") == policy.delay(2, key="egemm-tc")

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=-1.0)


# ---------------------------------------------------------------------------
# fault model
# ---------------------------------------------------------------------------


class TestFaultModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FleetFaultEvent("meteor_strike", 0.0)

    def test_site_autofilled_per_kind(self):
        assert FleetFaultEvent("device_crash", 0.0).site == "device"
        assert FleetFaultEvent("queued_crash", 0.0).site == "device"
        assert FleetFaultEvent("exec_stall", 0.0).site == "worker"
        assert FleetFaultEvent("queue_storm", 0.0).site == "queue"
        assert set(FLEET_FAULT_KINDS) >= {
            "device_crash", "queued_crash", "device_restart", "device_stall",
            "exec_stall", "queue_storm", "queue_storm_end", "launch_faults",
        }


# ---------------------------------------------------------------------------
# fleet exhaustion
# ---------------------------------------------------------------------------


def _pool(n=2) -> WorkerPool:
    spec = get_gpu("t4")
    return WorkerPool([DeviceWorker(f"t4-{i}", spec) for i in range(n)])


class _FakeBatch:
    """Just enough surface for queue/steal bookkeeping."""

    def __init__(self):
        self.priority = 0
        self.deadline_at = float("inf")
        self.created_at = 0.0
        self.service_s = 1e-6
        self.resolved = False


class TestFleetExhaustion:
    def test_select_raises_typed_error_when_all_dead(self):
        pool = _pool(2)
        for device in pool.devices:
            device.healthy = False
        with pytest.raises(FleetExhaustedError):
            pool.select(0.0)
        pool.devices[1].healthy = True
        assert pool.select(0.0) is pool.devices[1]

    def test_steal_skips_dead_devices_both_sides(self):
        pool = _pool(2)
        donor, thief = pool.devices
        donor.queue.append(_FakeBatch())
        donor.healthy = False
        # dead donor: its queue is drained by the crash handler, not
        # stolen from behind its back
        assert pool.steal_for(thief) is None
        # dead thief never steals
        donor.healthy = True
        thief.healthy = False
        assert pool.steal_for(thief) is None

    def test_service_fails_batches_when_fleet_dies(self):
        """Crash the only device, keep submitting: explicit FAILED
        responses with the fleet-exhausted reason, exact accounting."""
        rng = np.random.default_rng(0)
        config = ServeConfig(
            devices=("t4",),
            recovery=RecoveryConfig(
                retry=BackoffPolicy(base_s=20e-6, cap_s=80e-6, max_retries=2),
            ),
        )
        schedule = ChaosSchedule(
            faults=(FleetFaultEvent("device_crash", 1e-6, device="t4-0"),),
        )
        service = GemmService(config, chaos=schedule)
        arrivals = [(i * 50e-6, _request(rng)) for i in range(6)]
        responses = service.run(arrivals)
        stats = service.stats()
        assert stats["failed"] > 0
        assert "fleet-exhausted" in stats["fail_reasons"]
        assert stats["submitted"] == (
            stats["completed"] + stats["rejected"] + stats["expired"]
            + stats["failed"]
        )
        assert len(responses) == stats["submitted"]
        assert all(
            r.status is RequestStatus.FAILED for r in responses.values()
            if not r.ok
        )


# ---------------------------------------------------------------------------
# recovery mechanics in the event loop
# ---------------------------------------------------------------------------


class TestRecoveryMechanics:
    def test_hedge_winner_is_bit_identical(self):
        """A stalled execution hedges onto the idle device; the winner's
        product is byte-equal to a fault-free kernel run."""
        rng = np.random.default_rng(1)
        config = ServeConfig(
            devices=("t4", "t4"),
            recovery=RecoveryConfig(hedge_after_s=50e-6),
        )
        schedule = ChaosSchedule(
            faults=(FleetFaultEvent("exec_stall", 0.0, duration_s=1.0),),
        )
        service = GemmService(config, chaos=schedule)
        request = _request(rng)
        responses = service.run([(0.0, request)])
        recovery = service.stats()["recovery"]
        assert recovery["stalls"] == 1
        assert recovery["hedges"] == 1
        assert recovery["hedge_wins"] == 1
        assert recovery["hedge_cancelled"] == 1  # the stuck copy's finish
        (response,) = responses.values()
        assert response.ok and response.hedged
        kernel = service.router.kernels[response.kernel]
        want = kernel.compute(request.a, request.b, request.c)
        assert np.array_equal(_bits(response.d), _bits(want))

    def test_retry_then_expire_while_requeued(self):
        """A deadline that passes during backoff resolves EXPIRED at the
        retry, never silently dropped and never falsely completed."""
        rng = np.random.default_rng(2)
        config = ServeConfig(
            devices=("t4",),
            recovery=RecoveryConfig(
                retry=BackoffPolicy(base_s=5e-3, cap_s=5e-3, max_retries=3),
            ),
        )
        schedule = ChaosSchedule(
            faults=(FleetFaultEvent("launch_faults", 0.0, duration_s=10.0,
                                    param=1.0),),
        )
        service = GemmService(config, chaos=schedule)
        responses = service.run([(0.0, _request(rng, deadline_s=500e-6))])
        stats = service.stats()
        assert stats["recovery"]["retries"] == 1
        assert stats["expired"] == 1
        assert stats["completed"] == 0 and stats["failed"] == 0
        (response,) = responses.values()
        assert response.status is RequestStatus.EXPIRED

    def test_retry_exhaustion_fails_with_reason(self):
        """Permanent launch faults burn the retry budget, then resolve
        as FAILED carrying the attempt count."""
        rng = np.random.default_rng(3)
        config = ServeConfig(
            devices=("t4",),
            recovery=RecoveryConfig(
                retry=BackoffPolicy(base_s=10e-6, cap_s=40e-6, max_retries=2),
            ),
        )
        schedule = ChaosSchedule(
            faults=(FleetFaultEvent("launch_faults", 0.0, duration_s=10.0,
                                    param=1.0),),
        )
        service = GemmService(config, chaos=schedule)
        responses = service.run([(0.0, _request(rng))])
        stats = service.stats()
        assert stats["failed"] == 1
        assert stats["recovery"]["retries"] == 2
        assert "launch-fault" in stats["fail_reasons"]
        (response,) = responses.values()
        assert response.status is RequestStatus.FAILED
        assert response.retries == 2

    def test_crash_requeues_queued_batches(self):
        """``queued_crash`` kills a device holding queued work; the
        queue drains back onto the fleet and everything completes."""
        rng = np.random.default_rng(4)
        config = ServeConfig(
            devices=("t4", "t4"),
            recovery=RecoveryConfig(
                retry=BackoffPolicy(base_s=20e-6, cap_s=80e-6, max_retries=3),
            ),
        )
        schedule = ChaosSchedule(
            faults=(FleetFaultEvent("queued_crash", 0.0),),
        )
        service = GemmService(config, chaos=schedule)
        # three incompatible shapes -> three batches for two devices,
        # so one batch must queue behind an execution
        arrivals = [
            (0.0, _request(rng, m=16)), (0.0, _request(rng, m=16)),
            (0.0, _request(rng, m=24)), (0.0, _request(rng, m=24)),
            (0.0, _request(rng, m=32)), (0.0, _request(rng, m=32)),
        ]
        responses = service.run(arrivals)
        stats = service.stats()
        assert stats["recovery"]["crashes"] == 1
        assert stats["recovery"]["requeued"] >= 1
        assert stats["completed"] == stats["submitted"] == len(responses)

    def test_deferred_fault_terminates_without_target(self):
        """A ``queued_crash`` that never finds a queued batch re-arms
        only while work remains — the loop still terminates and the
        fault is not logged as fired."""
        rng = np.random.default_rng(5)
        config = ServeConfig(devices=("t4",),
                             recovery=RecoveryConfig())
        schedule = ChaosSchedule(
            faults=(FleetFaultEvent("queued_crash", 0.0),),
        )
        service = GemmService(config, chaos=schedule)
        responses = service.run([(0.0, _request(rng))])
        assert len(responses) == 1
        assert service.stats()["recovery"]["crashes"] == 0
        assert len(service.fleet_log) == 0

    def test_fault_free_run_identical_with_and_without_recovery(self):
        """Arming recovery without faults is byte-invisible — the
        guarantee that keeps the pre-chaos seed-0 pins valid."""
        def _run(recovery):
            config = ServeConfig(recovery=recovery)
            service = GemmService(config)
            return service.run(list(chaos_arrivals(0, 40, 150_000.0)))

        armed = _run(RecoveryConfig(
            retry=BackoffPolicy(base_s=40e-6, cap_s=320e-6, max_retries=3,
                                jitter=0.25, seed=0),
            hedge_after_s=200e-6,
        ))
        plain = _run(None)
        assert set(armed) == set(plain)
        for rid in armed:
            assert armed[rid].status == plain[rid].status
            if armed[rid].ok:
                assert np.array_equal(_bits(armed[rid].d), _bits(plain[rid].d))


# ---------------------------------------------------------------------------
# scenario catalogue / campaign invariants
# ---------------------------------------------------------------------------


class TestScenarios:
    def test_stall_hedge_scenario_exercises_hedging(self):
        result, _ = run_scenario("stall-hedge", seed=0, requests=150)
        assert result["pass"]
        assert result["recovery"]["hedges"] >= 1
        assert result["recovery"]["hedge_wins"] >= 1
        assert result["invariants"]["bit_mismatches"] == 0

    def test_device_crash_scenario_requeues(self):
        result, _ = run_scenario("device-crash", seed=0, requests=150)
        assert result["pass"]
        assert result["recovery"]["requeued"] >= 1
        assert result["recovery"]["crashes"] == 1

    def test_fleet_outage_fails_explicitly_and_degrades(self):
        result, _ = run_scenario("fleet-outage", seed=0, requests=150)
        assert result["pass"]
        assert result["counts"]["failed"] > 0
        assert "fleet-exhausted" in result["fail_reasons"]
        assert result["brownout"]["activations"] >= 1
        assert result["recovery"]["degraded"] > 0  # degraded at submit...
        # ...but none completed: the fleet is dead, so the degraded
        # contract is vacuously clean here (blackout-recovery covers the
        # completed-degraded case)
        assert result["invariants"]["degraded_violations"] == 0

    def test_blackout_recovery_retries_through_restart(self):
        # 200 requests (not 150): the loadgen's block-scaled slice
        # shifted the seed-0 draw so the brownout window at 150 closes
        # before any degradable request completes; at 200 the scenario
        # exercises every asserted path again
        result, _ = run_scenario("blackout-recovery", seed=0, requests=200)
        assert result["pass"]
        assert result["counts"]["failed"] == 0  # restart lands in backoff
        assert result["recovery"]["retries"] > 0
        assert result["recovery"]["restarts"] >= 1
        # degraded responses actually completed, within the fallback SLO
        assert result["invariants"]["degraded_completions"] > 0
        assert result["invariants"]["degraded_violations"] == 0

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 999),
        name=st.sampled_from((
            "baseline", "launch-faults", "queue-storm", "blackout-recovery",
        )),
    )
    def test_no_silent_drops_property(self, seed, name):
        """Accounting is exact and nothing vanishes for any seed."""
        result, _ = run_scenario(name, seed=seed, requests=60)
        inv = result["invariants"]
        assert inv["accounting_exact"]
        assert inv["silent_drops"] == 0
        assert inv["bit_mismatches"] == 0
        assert inv["degraded_violations"] == 0

    def test_campaign_report_validates_and_detects_corruption(self, tmp_path):
        out = tmp_path / "CHAOS_campaign.json"
        report, _ = run_campaign(seeds=(0,), requests=80,
                                 scenarios=("baseline", "launch-faults"),
                                 out=out)
        assert validate_chaos_report(report) == []
        assert report["summary"]["pass"]
        on_disk = json.loads(out.read_text())
        assert validate_chaos_report(on_disk) == []
        # corruption surfaces as problems, not silence
        on_disk["scenarios"]["baseline#s0"]["counts"]["completed"] += 1
        assert validate_chaos_report(on_disk)


# ---------------------------------------------------------------------------
# flight log round trip
# ---------------------------------------------------------------------------


class TestFlightLog:
    def test_chaos_events_validate_and_reconstruct(self, tmp_path):
        _, observer = run_scenario("device-crash", seed=0, requests=150)
        path = observer.recorder.dump_jsonl(tmp_path / "flight.jsonl")
        records = [json.loads(line) for line in
                   path.read_text().splitlines() if line]
        assert validate_flight_log(records) == []
        kinds = {r.get("kind") for r in records}
        assert {"chaos", "retry", "requeue"} <= kinds
        chaos = [r for r in records if r.get("kind") == "chaos"]
        assert all(r["fault_kind"] in FLEET_FAULT_KINDS for r in chaos)
        # a retried batch's members reconstruct with the retry event in
        # their lifecycle chain
        retried = next(r for r in records if r.get("kind") == "retry")
        member = next(
            r["request_ids"][0] for r in records
            if r.get("kind") == "batch_form"
            and r.get("batch_id") == retried["batch_id"]
        )
        life = reconstruct_lifecycle(records, member)
        assert life["batch_id"] == retried["batch_id"]
        assert "retry" in {e["kind"] for e in life["events"]}
        assert life["status"] is not None


# ---------------------------------------------------------------------------
# SoA recovery columns
# ---------------------------------------------------------------------------


class TestRequestTableRecoveryColumns:
    def test_attempts_hedged_reset_on_acquire_and_release(self):
        rng = np.random.default_rng(6)
        table = RequestTable(capacity=2)
        slot = table.acquire(_request(rng))
        table.attempts[slot] = 3
        table.hedged[slot] = 1
        table.release(slot)
        assert table.attempts[slot] == 0 and table.hedged[slot] == 0
        slot = table.acquire(_request(rng))
        assert table.attempts[slot] == 0 and table.hedged[slot] == 0

    def test_columns_survive_growth(self):
        rng = np.random.default_rng(7)
        table = RequestTable(capacity=2)
        slots = [table.acquire(_request(rng)) for _ in range(2)]
        table.attempts[slots[0]] = 2
        table.hedged[slots[1]] = 1
        for _ in range(4):  # force at least one growth
            table.acquire(_request(rng))
        assert table.capacity > 2
        assert table.attempts[slots[0]] == 2
        assert table.hedged[slots[1]] == 1


# ---------------------------------------------------------------------------
# shared-memory pool: dead forked workers
# ---------------------------------------------------------------------------


class TestProcpoolDeadWorkers:
    def _fp32_jobs(self, rng, n):
        import repro.serve.procpool as pp

        jobs = []
        for _ in range(n):
            a = [rng.standard_normal((6, 8)).astype(np.float32)
                 for _ in range(2)]
            b = [rng.standard_normal((8, 5)).astype(np.float32)
                 for _ in range(2)]
            jobs.append((pp.FP32_KERNEL, a, b, None))
        return jobs

    def test_killed_worker_detected_and_jobs_fall_back(self, caplog):
        import repro.serve.procpool as pp

        try:
            pool = pp.SharedMemoryGemmPool(2)
        except Exception:
            pytest.skip("shared-memory pool unavailable on this platform")
        rng = np.random.default_rng(8)
        try:
            os.kill(pool._workers[0].pid, signal.SIGKILL)
            pool._workers[0].join(timeout=5.0)
            with caplog.at_level(logging.WARNING,
                                 logger="repro.serve.procpool"):
                results = pool.run_groups(self._fp32_jobs(rng, 3))
            assert pool.dead_workers == 1
            assert any("died" in r.message for r in caplog.records)
            # surviving worker absorbed every job, bit-exactly
            assert all(r is not None for r in results)
            # second funeral: no jobs land, every result is the
            # in-process-fallback sentinel, and the pool stays usable
            os.kill(pool._workers[1].pid, signal.SIGKILL)
            pool._workers[1].join(timeout=5.0)
            results = pool.run_groups(self._fp32_jobs(rng, 2))
            assert pool.dead_workers == 2
            assert results == [None, None]
        finally:
            pool.close()

    def test_service_stays_correct_with_dead_worker(self, monkeypatch):
        """End to end: responses with a killed pool worker are identical
        to the inline run (the fallback recomputes in process)."""
        import repro.serve.procpool as pp

        monkeypatch.setenv("REPRO_SERVE_PROCS", "2")
        monkeypatch.setattr(pp, "_POOL", None)
        monkeypatch.setattr(pp, "_POOL_UNAVAILABLE", False)
        pool = pp.get_shared_pool()
        if pool is None:
            pytest.skip("shared-memory pool unavailable on this platform")

        def _run():
            service = GemmService(ServeConfig())
            return service.run(list(chaos_arrivals(3, 30, 150_000.0)))

        try:
            os.kill(pool._workers[0].pid, signal.SIGKILL)
            pool._workers[0].join(timeout=5.0)
            degraded = _run()
        finally:
            pool.close()
            monkeypatch.setattr(pp, "_POOL", None)
            monkeypatch.setenv("REPRO_SERVE_PROCS", "")
        inline = _run()
        assert set(degraded) == set(inline)
        for rid in degraded:
            assert degraded[rid].status == inline[rid].status
            if degraded[rid].ok:
                assert np.array_equal(_bits(degraded[rid].d),
                                      _bits(inline[rid].d))
