"""Tests for fragment element layouts, architecture gating, rooflines,
and the dataset generators."""

import numpy as np
import pytest

from repro.apps.datasets import descriptor_set, expression_profiles, gaussian_blobs, spd_matrix
from repro.gpu.arch import (
    AMPERE,
    PASCAL,
    TURING,
    VOLTA,
    UnsupportedArchitectureError,
    check_listing,
)
from repro.gpu.sass import SassInstr, SassListing
from repro.kernels import CublasCudaFp32, EgemmTcKernel, SdkCudaFp32
from repro.model.roofline import analyze_kernels, ridge_intensity
from repro.tensorcore.fragment import FragmentRole
from repro.tensorcore.layout import collect, distribute, elements_per_thread, ownership
from repro.tensorize.codegen import generate_iteration_sass


class TestFragmentLayout:
    @pytest.mark.parametrize("role", list(FragmentRole))
    def test_ownership_is_a_partition(self, role):
        """Every element owned by exactly one thread; all 32 threads own
        the same number of elements — the property behind collaborative
        fragment loads (§2.1)."""
        owner = ownership(role)
        counts = np.bincount(owner.ravel(), minlength=32)
        assert np.all(counts == elements_per_thread(role))
        assert owner.size == 32 * elements_per_thread(role)

    @pytest.mark.parametrize("role", list(FragmentRole))
    def test_distribute_collect_round_trip(self, role, rng):
        shape = {FragmentRole.MATRIX_B: (8, 8)}.get(role, (16, 8))
        tile = rng.uniform(-1, 1, shape).astype(np.float32)
        assert np.array_equal(collect(distribute(tile, role), role), tile)

    def test_a_and_c_share_row_ownership(self):
        """m16n8k8: the A and C maps coincide, so the accumulator reuse
        of the FRAG caching never crosses threads."""
        assert np.array_equal(
            ownership(FragmentRole.MATRIX_A), ownership(FragmentRole.ACCUMULATOR)
        )

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            distribute(np.zeros((8, 8)), FragmentRole.MATRIX_A)
        with pytest.raises(ValueError):
            collect(np.zeros((16, 4)), FragmentRole.MATRIX_B)


class TestArchitectureGating:
    def test_turing_accepts_egemm_sass(self):
        check_listing(generate_iteration_sass(), TURING)

    def test_ampere_accepts_it_too(self):
        check_listing(generate_iteration_sass(), AMPERE)

    def test_volta_rejects_hmma_1688(self):
        """The artifact's 'Segmentation fault (core dumped)' on V100,
        surfaced as a diagnosis."""
        with pytest.raises(UnsupportedArchitectureError, match="Turing architecture is required"):
            check_listing(generate_iteration_sass(), VOLTA)

    def test_pascal_has_no_tensor_cores(self):
        with pytest.raises(UnsupportedArchitectureError, match="no\\s+Tensor Cores"):
            check_listing(generate_iteration_sass(), PASCAL)

    def test_volta_accepts_its_own_shape(self):
        listing = SassListing(name="v")
        listing.emit(SassInstr(opcode="HMMA.884.F32"))
        check_listing(listing, VOLTA)

    def test_non_hmma_always_fine(self):
        listing = SassListing(name="mem")
        listing.emit(SassInstr(opcode="LDG.E.128"))
        check_listing(listing, PASCAL)


class TestRoofline:
    def test_ridge_scales_with_peak(self):
        from repro.gpu.spec import TESLA_T4

        assert ridge_intensity(TESLA_T4, 64.0) == pytest.approx(200.0)
        assert ridge_intensity(TESLA_T4, 8.0) == pytest.approx(25.0)

    def test_kernel_classification(self):
        points = {
            p.kernel: p
            for p in analyze_kernels([EgemmTcKernel(), SdkCudaFp32(), CublasCudaFp32()])
        }
        assert points["SDK-CUDA-FP32"].bound == "memory-bound"
        assert points["EGEMM-TC"].bound == "compute-bound"
        # cuBLAS fp32 sits below its roof (fitted efficiency < 1)
        assert points["cuBLAS-CUDA-FP32"].roof_fraction < 0.7

    def test_intensity_above_ridge_for_egemm(self):
        """§6.1's design goal: the chosen tiling clears the ridge."""
        (p,) = analyze_kernels([EgemmTcKernel()])
        assert p.intensity_flop_per_byte > p.ridge

    def test_achieved_below_roof(self):
        for p in analyze_kernels([EgemmTcKernel(), SdkCudaFp32()]):
            assert p.achieved_tflops <= p.roof_tflops * 1.05


class TestDatasets:
    def test_gaussian_blobs(self, rng):
        x, labels, centroids = gaussian_blobs(rng, clusters=3, per_cluster=20, dim=5)
        assert x.shape == (60, 5) and x.dtype == np.float32
        assert centroids.shape == (3, 5)
        assert np.bincount(labels).tolist() == [20, 20, 20]

    def test_gaussian_blobs_validation(self, rng):
        with pytest.raises(ValueError):
            gaussian_blobs(rng, clusters=0)

    def test_descriptor_set_twins(self, rng):
        ref, q, truth = descriptor_set(rng, n_base=50, n_query=10, dim=32)
        assert ref.shape == (100, 32)
        assert np.allclose(np.linalg.norm(ref, axis=1), 1.0, atol=1e-5)
        # twins interleave: odd rows sit ~1e-3 from their even partner
        gaps = np.linalg.norm(ref[0::2] - ref[1::2], axis=1)
        assert np.all(gaps < 1e-3 * np.sqrt(32) * 3)  # ~noise * sqrt(dim)
        assert np.all(truth % 2 == 0)

    def test_spd_matrix_spectrum(self, rng):
        a, spectrum = spd_matrix(rng, n=16)
        vals = np.sort(np.linalg.eigvalsh(a.astype(np.float64)))[::-1]
        assert np.allclose(vals, spectrum, rtol=1e-3)
        assert np.allclose(a, a.T, atol=1e-5)

    def test_spd_matrix_validation(self, rng):
        with pytest.raises(ValueError):
            spd_matrix(rng, n=8, spectrum=np.ones(4))

    def test_expression_profiles(self, rng):
        x, labels = expression_profiles(rng, clusters=4, per_cluster=10, genes=12)
        assert x.shape == (40, 12)
        assert np.all(x > 0)  # exp-transformed
        assert len(np.unique(labels)) == 4
