"""Shared fixtures for the EGEMM-TC reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need different streams pass seeds."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrices(rng):
    """A (48, 32) x (32, 40) fp32 problem with values in [-1, 1]."""
    a = rng.uniform(-1.0, 1.0, (48, 32)).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, (32, 40)).astype(np.float32)
    c = rng.uniform(-1.0, 1.0, (48, 40)).astype(np.float32)
    return a, b, c


@pytest.fixture
def tile_16(rng):
    """A primitive-sized 16x16x16 fp32 problem."""
    a = rng.uniform(-1.0, 1.0, (16, 16)).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, (16, 16)).astype(np.float32)
    c = rng.uniform(-1.0, 1.0, (16, 16)).astype(np.float32)
    return a, b, c
