"""Tests for the observability layer: tracing, metrics, exporters, profiler.

Covers the contracts the rest of the stack leans on: span nesting and
thread isolation, the near-zero disabled fast path, metric aggregation
under concurrency (the snapshot/reset protocol), Chrome-trace schema
validity, and profile-report determinism at a fixed seed.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs.export import (
    chrome_trace,
    complete_event,
    run_manifest,
    spans_to_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, get_registry
from repro.obs.tracing import NULL_SPAN, Tracer, configure, current_span_id, get_tracer


@pytest.fixture
def tracer():
    """The process tracer, enabled and emptied; state restored on exit."""
    t = get_tracer()
    prev = t.enabled
    t.clear()
    configure(True)
    yield t
    configure(prev)
    t.clear()


class TestSpans:
    def test_nesting_parent_ids(self, tracer):
        with tracer.span("outer") as outer:
            assert current_span_id() == outer.span_id
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert current_span_id() == inner.span_id
            assert current_span_id() == outer.span_id
        assert current_span_id() == 0
        assert outer.parent_id == 0

    def test_attributes_and_timing(self, tracer):
        with tracer.span("work", category="test", shape="4x4") as span:
            span.set(result=42)
        assert span.attributes == {"shape": "4x4", "result": 42}
        assert span.duration_ns >= 0
        assert span.category == "test"

    def test_finished_span_collection(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["b", "a"]  # finish order, innermost first
        assert len(tracer) == 2
        drained = tracer.drain()
        assert len(drained) == 2
        assert len(tracer) == 0

    def test_exception_is_recorded_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed") as span:
                raise RuntimeError("boom")
        assert span.attributes["error"] == "RuntimeError"
        assert current_span_id() == 0  # the stack unwound

    def test_threads_get_independent_stacks(self, tracer):
        results = {}
        barrier = threading.Barrier(4)  # all alive at once: idents stay distinct

        def worker(name):
            barrier.wait()
            with tracer.span(f"{name}.outer") as outer:
                with tracer.span(f"{name}.inner") as inner:
                    results[name] = (outer.span_id, inner.parent_id)
            barrier.wait()

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every inner span's parent is its own thread's outer span
        for outer_id, inner_parent in results.values():
            assert inner_parent == outer_id
        spans = tracer.spans()
        assert len(spans) == 8
        assert len({s.thread_id for s in spans}) == 4


class TestDisabledOverhead:
    def test_disabled_returns_shared_null_span(self):
        t = Tracer(enabled=False)
        span = t.span("anything", key="value")
        assert span is NULL_SPAN
        assert t.span("more") is span  # the same singleton every time
        with span as s:
            s.set(a=1)
        assert len(t) == 0
        assert t.current_span_id() == 0

    def test_disabled_fast_path_is_cheap(self):
        # Not a benchmark — a guard against accidentally making the
        # disabled path allocate or lock.  50k no-op spans in well under
        # a second on any machine this suite runs on.
        t = Tracer(enabled=False)
        t0 = time.perf_counter()
        for _ in range(50_000):
            with t.span("hot"):
                pass
        assert time.perf_counter() - t0 < 1.0

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a.counter")
        reg.set_gauge("a.gauge", 5.0)
        reg.observe("a.histogram", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}


class TestMetrics:
    def test_counter_rejects_negative(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_concurrent_increments_aggregate_exactly(self):
        reg = MetricsRegistry(enabled=True)

        def worker():
            for _ in range(1000):
                reg.inc("shared.total")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot()["counters"]["shared.total"] == 8000

    def test_histogram_summary_and_buckets(self):
        h = Histogram()
        for v in (1.0, 3.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(104.0)
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["buckets"]["<=2^0"] == 1  # 1.0
        assert snap["buckets"]["<=2^2"] == 1  # 3.0
        assert snap["buckets"]["<=2^7"] == 1  # 100.0

    def test_query_prefix_filter(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("gpu.engine.cycles", 10)
        reg.inc("gpu.engine.waves", 2)
        reg.inc("emulation.gemm.runs")
        assert reg.query("gpu.engine") == {"gpu.engine.cycles": 10, "gpu.engine.waves": 2}
        assert reg.query("gpu.engine.cycles") == {"gpu.engine.cycles": 10}
        # prefix matching is component-wise, not substring
        assert reg.query("gpu.eng") == {}

    def test_snapshot_reset_protocol(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("x", 5)
        reg.set_gauge("g", 3.0)
        reg.observe("h", 2.0)
        before = reg.snapshot()
        reg.reset()
        after = reg.snapshot()
        assert before["counters"]["x"] == 5
        assert after["counters"]["x"] == 0
        assert after["gauges"]["g"] == 0.0
        assert after["histograms"]["h"]["count"] == 0

    def test_providers_evaluated_at_snapshot(self):
        reg = MetricsRegistry(enabled=True)
        state = {"n": 1}
        reg.register_provider("sub.stats", lambda: dict(state))
        assert reg.snapshot()["providers"]["sub.stats"] == {"n": 1}
        state["n"] = 7  # lazily evaluated: the next snapshot sees the update
        assert reg.snapshot()["providers"]["sub.stats"] == {"n": 7}
        reg.unregister_provider("sub.stats")
        assert "sub.stats" not in reg.snapshot()["providers"]

    def test_broken_provider_is_contained(self):
        reg = MetricsRegistry(enabled=True)
        reg.register_provider("bad", lambda: 1 / 0)
        provided = reg.snapshot()["providers"]["bad"]
        assert "ZeroDivisionError" in provided["error"]

    def test_mma_counter_snapshot_is_atomic_pair(self):
        from repro.tensorcore.mma import MmaCounter

        counter = MmaCounter()
        counter.record(16, 16, 16)
        snap = counter.snapshot()
        assert snap == {"calls": 1, "flops": 2 * 16 * 16 * 16}
        final = counter.reset()
        assert final == snap
        assert counter.snapshot() == {"calls": 0, "flops": 0}

    def test_subsystem_providers_are_registered(self):
        import repro.gpu.scheduler  # noqa: F401 — registers its provider
        import repro.perf.split_cache  # noqa: F401

        providers = get_registry().snapshot()["providers"]
        assert "gpu.schedule_cache" in providers
        assert "perf.split_cache" in providers
        for key in ("hits", "misses", "hit_rate"):
            assert key in providers["gpu.schedule_cache"]
            assert key in providers["perf.split_cache"]


class TestChromeTrace:
    def test_span_export_validates(self, tracer):
        with tracer.span("outer", category="test", kernel="egemm-tc"):
            with tracer.span("inner"):
                pass
        events = spans_to_events(tracer.spans())
        doc = chrome_trace(events, manifest=run_manifest(seed=7))
        count = validate_chrome_trace(doc)
        assert count == len(events)
        assert json.loads(json.dumps(doc))  # round-trips as JSON
        # the metadata lane + both spans are present
        phases = [e["ph"] for e in events]
        assert phases.count("X") == 2 and "M" in phases
        x_events = [e for e in events if e["ph"] == "X"]
        by_name = {e["name"]: e for e in x_events}
        assert by_name["inner"]["args"]["parent_id"] == by_name["outer"]["args"]["span_id"]
        assert by_name["outer"]["args"]["kernel"] == "egemm-tc"

    def test_validator_rejects_broken_documents(self):
        validate_chrome_trace({"traceEvents": []})  # empty is fine
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "x"}]})  # no ts/dur
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [complete_event("x", ts=-1.0, dur=1.0)]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "M", "name": "nonsense", "args": {}}]}
            )

    def test_write_chrome_trace_roundtrip(self, tmp_path):
        events = [complete_event("tile", ts=0.0, dur=12.5, args={"k": 1})]
        path = write_chrome_trace(tmp_path / "t.json", events, manifest={"seed": 3})
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == 1
        assert doc["otherData"]["manifest"]["seed"] == 3

    def test_manifest_contents(self):
        manifest = run_manifest(seed=11, config={"kernel": "egemm-tc"})
        assert manifest["seed"] == 11
        assert manifest["config"] == {"kernel": "egemm-tc"}
        for key in ("python", "numpy", "platform", "repro_version", "env", "argv"):
            assert key in manifest


class TestProfiler:
    def test_engine_profile_matches_engine_aggregates(self, tracer):
        from repro.gpu.spec import TESLA_T4
        from repro.kernels.egemm import EgemmTcKernel
        from repro.obs.profile import profile_kernel

        profile = profile_kernel("egemm-tc", 128, 128, 128)
        r = profile.report
        assert profile.mode == "engine"
        # bit-for-bit against an uninstrumented kernel.time run
        timing = EgemmTcKernel().time(128, 128, 128, TESLA_T4)
        assert r["timing"]["total_cycles"] == timing.cycles
        assert r["timing"]["seconds"] == timing.seconds
        assert r["consistency"]["cycles_match"] is True
        assert r["consistency"]["seconds_match"] is True
        # instruction classes cover the stream and include the tensor op
        assert "HMMA" in r["instruction_classes"]
        assert all(c["issue_cycles"] >= 0 and c["stall_cycles"] >= 0
                   for c in r["instruction_classes"].values())
        assert 0.0 <= r["memory"]["l2_hit_rate"] <= 1.0
        assert r["waves"], "engine profiles carry the wave timeline"

    def test_roofline_profile_for_baseline_kernel(self, tracer):
        from repro.obs.profile import profile_kernel

        profile = profile_kernel("cublas-tc-emulation", 128, 128, 128)
        assert profile.mode == "roofline"
        assert "schedule" not in profile.report
        assert profile.report["consistency"]["cycles_match"] is True

    def test_profile_report_is_deterministic(self, tracer):
        from repro.obs.profile import format_report, profile_kernel

        p1 = profile_kernel("egemm-tc", 128, 128, 128)
        p2 = profile_kernel("egemm-tc", 128, 128, 128)
        # everything but the cumulative process-wide metrics is identical
        r1 = {k: v for k, v in p1.report.items() if k != "metrics"}
        r2 = {k: v for k, v in p2.report.items() if k != "metrics"}
        assert r1 == r2
        assert format_report(p1) == format_report(p2)

    def test_trace_export_end_to_end(self, tracer, tmp_path):
        from repro.obs.profile import export_trace, profile_kernel

        profile = profile_kernel("egemm-tc", 128, 128, 128)
        path = export_trace(profile, tmp_path / "trace.json", seed=0)
        doc = json.loads(path.read_text())
        count = validate_chrome_trace(doc)
        assert count > 0
        # the pipeline lanes, the wave lane, and the host span lane
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert {1, 2, 100} <= pids
        assert doc["otherData"]["manifest"]["config"]["kernel"] == "egemm-tc"

    def test_exec_hook_restored_after_collection(self):
        from repro.gpu import engine
        from repro.obs.profile import collect_executions

        assert engine.EXEC_HOOK is None
        with collect_executions() as captured:
            assert engine.EXEC_HOOK is not None
        assert engine.EXEC_HOOK is None
        assert captured == []

    def test_cli_smoke(self, tmp_path, capsys):
        from repro.obs.profile import main
        from repro.obs.tracing import configure

        trace_path = tmp_path / "trace.json"
        json_path = tmp_path / "profile.json"
        try:
            rc = main(["egemm-tc", "--shape", "64x64x64",
                       "--trace", str(trace_path), "--json", str(json_path)])
        finally:
            configure(False)  # the CLI enables tracing; don't leak it
        assert rc == 0
        out = capsys.readouterr().out
        assert "== profile: egemm-tc 64x64x64" in out
        assert validate_chrome_trace(json.loads(trace_path.read_text())) > 0
        report = json.loads(json_path.read_text())
        assert report["kernel"] == "egemm-tc"
        assert report["consistency"]["cycles_match"] is True

    def test_shape_parse_errors(self):
        from repro.obs.profile import _parse_shape

        assert _parse_shape("128x64x32") == (128, 64, 32)
        assert _parse_shape("16×16×16") == (16, 16, 16)
        for bad in ("128x64", "axbxc", "0x16x16"):
            with pytest.raises(ValueError):
                _parse_shape(bad)


class TestWiring:
    """The instrumentation hooks in the subsystems actually fire."""

    def test_emulated_gemm_records_spans_and_metrics(self, tracer):
        import numpy as np

        from repro.emulation.gemm import EmulatedGemm

        reg = get_registry()
        before = reg.query("emulation.gemm").get("emulation.gemm.runs", 0)
        rng = np.random.default_rng(0)
        a = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        b = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        EmulatedGemm().run(a, b)
        assert reg.query("emulation.gemm")["emulation.gemm.runs"] == before + 1
        spans = [s for s in tracer.spans() if s.name == "emulation.gemm.run"]
        assert spans and spans[-1].attributes["mma_calls"] > 0

    def test_fault_events_carry_the_active_span_id(self, tracer):
        import numpy as np

        from repro.resilience.faults import FaultInjector, FaultSite

        injector = FaultInjector(seed=5, site=FaultSite.ACCUMULATOR)
        injector.arm(skip=0)
        with tracer.span("campaign.run") as span:
            injector("accumulator", np.ones(8, dtype=np.float32))
        assert injector.events, "the armed injector must fire"
        assert injector.events[0].span_id == span.span_id
        assert injector.events[0].as_dict()["span_id"] == span.span_id

    def test_kernel_time_span_has_timing_attributes(self, tracer):
        from repro.kernels.egemm import EgemmTcKernel

        EgemmTcKernel().time(64, 64, 64)
        spans = [s for s in tracer.spans() if s.name == "kernel.time"]
        assert spans
        attrs = spans[-1].attributes
        assert attrs["kernel"] == "EGEMM-TC"
        assert attrs["m"] == 64 and attrs["seconds"] > 0
