"""Raw-speed serving core: bit-identity, pooling, and SoA invariants.

Covers the hot-path machinery end to end:

* batched-elements GEMM vs per-request serial replay (hypothesis),
* deferred cross-batch fused execution vs eager execution,
* split-plan sharing between stacked launches and single runs,
* :class:`~repro.perf.scratch.ScratchPool` reuse contract,
* :class:`~repro.serve.soa.RequestTable` slot ring,
* the opt-in shared-memory process pool (byte determinism + fallback),
* the burn-rate monitor's sliding-window counters vs a brute scan,
* the seed-0 quick SLO compliance values (regression pin).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emulation.gemm import EmulatedGemm
from repro.obs.serving import ServeObserver
from repro.obs.slo import BurnRateMonitor
from repro.perf.scratch import ScratchPool
from repro.perf.split_cache import SplitCache
from repro.serve.api import RequestStatus
from repro.serve.loadgen import make_request, open_loop_arrivals, run_load_test
from repro.serve.service import GemmService, ServeConfig
from repro.serve.soa import RequestState, RequestTable


def _bits(x: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(x).view(np.uint32)


# --- fused stacked-chunk path vs serial replay ------------------------------

@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    nb=st.integers(1, 5),
    m=st.integers(1, 24),
    k=st.integers(1, 48),
    n=st.integers(1, 24),
    with_c=st.booleans(),
    cached=st.booleans(),
)
def test_batched_elements_bit_identical_to_serial(seed, nb, m, k, n, with_c, cached):
    """One stacked launch == nb independent runs, to the bit."""
    rng = np.random.default_rng(seed)
    a_els = [rng.standard_normal((m, k)).astype(np.float32) for _ in range(nb)]
    b_els = [rng.standard_normal((k, n)).astype(np.float32) for _ in range(nb)]
    c_els = None
    if with_c:
        c_els = [rng.standard_normal((m, n)).astype(np.float32) for _ in range(nb)]
    gemm = EmulatedGemm(split_cache=SplitCache() if cached else None)
    d_batch, stats = gemm.run_batched_elements(a_els, b_els, c_els)
    assert d_batch.shape == (nb, m, n)
    serial = EmulatedGemm()
    for i in range(nb):
        c = None if c_els is None else c_els[i]
        d_one, _ = serial.run(a_els[i], b_els[i], c)
        assert np.array_equal(_bits(d_batch[i]), _bits(d_one))


def test_stacked_launch_shares_entries_with_single_runs():
    """get_stacked hits on operands already split by a single run."""
    rng = np.random.default_rng(0)
    cache = SplitCache(maxsize=64)
    gemm = EmulatedGemm(split_cache=cache)
    a0 = rng.standard_normal((8, 16)).astype(np.float32)
    b0 = rng.standard_normal((16, 8)).astype(np.float32)
    gemm.run(a0, b0)  # seeds the per-element entries
    cache.reset_stats()
    a1 = rng.standard_normal((8, 16)).astype(np.float32)
    b1 = rng.standard_normal((16, 8)).astype(np.float32)
    gemm.run_batched_elements([a0, a1], [b0, b1])
    # a0 and b0 come from the single run's entries; a1/b1 are misses
    assert cache.stats.hits == 2
    assert cache.stats.misses == 2
    cache.reset_stats()
    # ...and the batch inserted a1/b1, so a replay is all hits
    gemm.run_batched_elements([a0, a1], [b0, b1])
    assert cache.stats.hits == 4
    assert cache.stats.misses == 0


# --- deferred cross-batch fused execution -----------------------------------

def _run_service(defer: bool):
    rng = np.random.default_rng(5)
    svc = GemmService(ServeConfig(), defer_math=defer)
    arrivals = list(open_loop_arrivals(rng, 60, 150_000.0, "poisson"))
    responses = svc.run(arrivals)
    return [responses[rid] for rid in sorted(responses)]


def test_deferred_execution_matches_eager():
    """Deferring batch math to end-of-run changes nothing observable."""
    eager = _run_service(False)
    deferred = _run_service(True)
    assert len(eager) == len(deferred)
    completed = 0
    for r_e, r_d in zip(eager, deferred):
        assert r_e.request_id == r_d.request_id
        assert r_e.status == r_d.status
        assert r_e.kernel == r_d.kernel
        assert r_e.latency_s == r_d.latency_s
        if r_e.status is RequestStatus.COMPLETED:
            completed += 1
            assert r_d.d is not None
            assert np.array_equal(_bits(r_e.d), _bits(r_d.d))
        else:
            assert r_d.d is None
    assert completed > 0


# --- ScratchPool ------------------------------------------------------------

def test_scratch_pool_reuses_buffers_per_bucket():
    pool = ScratchPool()
    a = pool.take("acc", (8, 8))
    b = pool.take("acc", (8, 8))
    assert a is b
    assert pool.stats.hits == 1 and pool.stats.misses == 1
    # distinct tag, shape, or dtype -> distinct buffer
    assert pool.take("other", (8, 8)) is not a
    assert pool.take("acc", (8, 9)) is not a
    assert pool.take("acc", (8, 8), dtype=np.float32) is not a
    assert pool.take("acc", (8, 8)) is a


def test_scratch_pool_oversize_served_uncached():
    pool = ScratchPool(max_bytes=1024)
    big = pool.take("x", (1024,))  # 8 KiB > budget
    big2 = pool.take("x", (1024,))
    assert big is not big2
    assert pool.stats.oversize == 2
    assert pool.stats.hits == 0


# --- RequestTable slot ring -------------------------------------------------

class _Row:
    def __init__(self, deadline_at=np.inf, priority=0, submitted_at=0.0,
                 shape=(4, 4, 4)):
        self.deadline_at = deadline_at
        self.priority = priority
        self.submitted_at = submitted_at
        self.shape = shape


def test_request_table_acquire_release_recycles_slots():
    table = RequestTable(capacity=2)
    r0, r1 = _Row(priority=1), _Row(priority=2)
    s0, s1 = table.acquire(r0), table.acquire(r1)
    assert s0 != s1
    assert table.request(s0) is r0
    assert table.state[s0] == RequestState.QUEUED
    assert table.priority[s1] == 2
    table.release(s0)
    assert table.state[s0] == RequestState.FREE
    assert table.request(s0) is None
    assert np.isinf(table.deadline_at[s0])
    # the freed slot comes back before any growth
    s2 = table.acquire(_Row())
    assert s2 == s0
    assert table.capacity == 2


def test_request_table_grows_when_ring_runs_dry():
    table = RequestTable(capacity=2)
    rows = [_Row(priority=i) for i in range(5)]
    slots = [table.acquire(r) for r in rows]
    assert len(set(slots)) == 5
    assert table.capacity >= 5
    for slot, row in zip(slots, rows):
        assert table.request(slot) is row
        assert table.priority[slot] == row.priority
    for slot in slots:
        table.release(slot)
    assert all(table.state[s] == RequestState.FREE for s in slots)


# --- shared-memory process pool ---------------------------------------------

def _fresh_pool(monkeypatch, procs: str):
    import repro.serve.procpool as pp

    monkeypatch.setenv("REPRO_SERVE_PROCS", procs)
    monkeypatch.setattr(pp, "_POOL", None)
    monkeypatch.setattr(pp, "_POOL_UNAVAILABLE", False)
    return pp


def test_procs_pool_disabled_without_env(monkeypatch):
    pp = _fresh_pool(monkeypatch, "")
    assert pp.procs_requested() == 0
    assert pp.get_shared_pool() is None
    monkeypatch.setenv("REPRO_SERVE_PROCS", "not-a-number")
    assert pp.procs_requested() == 0
    assert pp.get_shared_pool() is None


def test_procs_pool_bitwise_identical_to_inline(monkeypatch):
    pp = _fresh_pool(monkeypatch, "2")
    pool = pp.get_shared_pool()
    if pool is None:
        pytest.skip("shared-memory pool unavailable on this platform")
    try:
        from repro.kernels.registry import get_kernel

        rng = np.random.default_rng(9)
        a1 = [rng.standard_normal((6, 12)).astype(np.float32) for _ in range(3)]
        b1 = [rng.standard_normal((12, 5)).astype(np.float32) for _ in range(3)]
        a2 = [rng.standard_normal((8, 16)).astype(np.float32) for _ in range(2)]
        b2 = [rng.standard_normal((16, 8)).astype(np.float32) for _ in range(2)]
        c2 = [rng.standard_normal((8, 8)).astype(np.float32) for _ in range(2)]
        jobs = [
            (pp.FP32_KERNEL, a1, b1, None),
            ("egemm-tc", a2, b2, c2),
        ]
        results = pool.run_groups(jobs)
        assert all(r is not None for r in results)
        want_fp32 = np.matmul(np.stack(a1), np.stack(b1))
        assert np.array_equal(_bits(results[0]), _bits(want_fp32))
        want_egemm, _ = get_kernel("egemm-tc")._gemm.run_batched(
            np.stack(a2), np.stack(b2), np.stack(c2)
        )
        assert np.array_equal(_bits(results[1]), _bits(want_egemm))
    finally:
        pool.close()
        monkeypatch.setattr(pp, "_POOL", None)


def test_serve_deterministic_with_procs_pool(monkeypatch):
    """End-to-end: pooled run is byte-identical to the inline run."""
    pp = _fresh_pool(monkeypatch, "2")
    if pp.get_shared_pool() is None:
        pytest.skip("shared-memory pool unavailable on this platform")
    try:
        pooled = _run_service(True)
    finally:
        pool = pp._POOL
        if pool is not None:
            pool.close()
        monkeypatch.setattr(pp, "_POOL", None)
        monkeypatch.setenv("REPRO_SERVE_PROCS", "")
    inline = _run_service(True)
    assert len(pooled) == len(inline)
    for r_p, r_i in zip(pooled, inline):
        assert r_p.status == r_i.status
        if r_p.status is RequestStatus.COMPLETED:
            assert np.array_equal(_bits(r_p.d), _bits(r_i.d))


# --- burn-rate monitor sliding counters -------------------------------------

@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_burn_monitor_incremental_matches_scan(seed):
    rng = np.random.default_rng(seed)
    monitor = BurnRateMonitor("prop")
    events: list[tuple[float, bool]] = []
    t = 0.0
    for _ in range(300):
        t += float(rng.random()) * 2e-4
        good = bool(rng.random() > 0.3)
        events.append((t, good))
        monitor.observe(t, good)
        for window_s in monitor._win_lengths:
            inside = [(at, g) for at, g in events if t - window_s < at <= t]
            bad = sum(1 for _, g in inside if not g)
            want = (bad / len(inside)) / monitor.budget if inside else 0.0
            assert monitor._burn(t, window_s) == pytest.approx(want, abs=1e-12)


def test_burn_monitor_out_of_order_falls_back_to_scan():
    monitor = BurnRateMonitor("ooo")
    monitor.observe(1e-4, True)
    monitor.observe(2e-4, False)
    monitor.observe(1.5e-4, False)  # out of order: counters retire
    assert not monitor._ordered
    # burn still exact via the scan path: 2 bad of 3 in the long window
    burn = monitor._burn(2e-4, monitor._win_lengths[-1])
    assert burn == pytest.approx((2 / 3) / monitor.budget)


# --- seed-0 quick SLO pin ---------------------------------------------------

def test_seed0_quick_slo_compliance_values():
    """The serve --quick workload is latency-compliant after excluding
    structurally infeasible deadlines (pins the satellite fix: the old
    record's 0.0 was a coerced False from misclassified client errors)."""
    config = ServeConfig()
    observer = ServeObserver(infeasible_deadline_s=config.max_wait_s)
    service, _ = run_load_test(
        200, seed=0, arrival="poisson", rate_rps=150_000.0,
        concurrency=16, config=config, observer=observer,
    )
    assert service.completed == 184
    latency = observer.slo_summary()["latency"]
    # the subnormal-floor certificates shifted the seed-0 draw (plain
    # mid-tier requests now honestly route to fp32): one borderline
    # deadline still lands just past its SLO, which is exactly what a
    # non-degenerate good fraction should show
    assert latency["bad"] == 1
    assert latency["bad_fraction"] == pytest.approx(1 / 185)
    assert latency["compliant"] is True
    assert latency["infeasible_excluded"] == 11
    # the history-record field: a float good fraction, not a coerced bool
    assert 0.0 < 1.0 - latency["bad_fraction"] < 1.0
