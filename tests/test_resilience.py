"""Fault-tolerance layer: injection, ABFT, the resilient runner, and the
robustness satellites (empty operands, out-of-range inputs, parallel-map
failure semantics, split-cache staleness)."""

from __future__ import annotations

import logging
import pickle

import numpy as np
import pytest

from repro.emulation.gemm import EmulatedGemm
from repro.emulation.schemes import get_scheme
from repro.kernels.registry import get_kernel
from repro.perf.parallel import parallel_map
from repro.perf.split_cache import SplitCache
from repro.resilience import (
    AbftGemm,
    AbftKernel,
    ExhaustedFallbacksError,
    FaultInjector,
    FaultSite,
    InputValidationError,
    ResilienceError,
    ResilientRunner,
    StageTimeoutError,
    abft_run,
    assess_operand,
    call_with_timeout,
    flip_bit,
    run_campaign,
)
from repro.splits.ozaki import ozaki_gemm
from repro.splits.round import round_split
from repro.tensorize.kernel import run_functional


def _problem(rng, m=48, n=48, k=96):
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    return a, b


# ---------------------------------------------------------------------------
# fault injection machinery
# ---------------------------------------------------------------------------


class TestFlipBit:
    def test_flips_and_restores(self):
        x = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        flip_bit(x, 1, 30)
        assert x[1] != 2.0
        flip_bit(x, 1, 30)
        assert x[1] == 2.0

    def test_fp16_width(self):
        x = np.array([1.0], dtype=np.float16)
        flip_bit(x, 0, 15)
        assert x[0] == -1.0  # sign bit

    def test_rejects_noncontiguous(self):
        x = np.zeros((4, 4), dtype=np.float32)[:, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            flip_bit(x, 0, 5)

    def test_rejects_out_of_range_bit(self):
        with pytest.raises(ValueError, match="out of range"):
            flip_bit(np.zeros(2, dtype=np.float32), 0, 32)


class TestFaultInjector:
    def test_deterministic_from_seed(self, rng):
        a, b = _problem(rng)
        gemm = EmulatedGemm()

        def campaign():
            inj = FaultInjector(seed=7, site=FaultSite.ACCUMULATOR)
            with inj.installed():
                inj.arm(skip=2)
                d, _ = gemm.run(a, b)
            return d, inj.events

        d1, ev1 = campaign()
        d2, ev2 = campaign()
        assert np.array_equal(d1, d2)
        assert ev1 == ev2
        assert len(ev1) == 1 and ev1[0].site == "accumulator"

    def test_budget_is_one_by_default(self, rng):
        a, b = _problem(rng)
        inj = FaultInjector(seed=0, site=FaultSite.ACCUMULATOR)
        with inj.installed():
            inj.arm(skip=0)
            EmulatedGemm().run(a, b)
            EmulatedGemm().run(a, b)  # budget already spent
        assert inj.injected == 1

    def test_disarmed_injector_is_transparent(self, rng):
        a, b = _problem(rng)
        gemm = EmulatedGemm()
        d0, _ = gemm.run(a, b)
        inj = FaultInjector(seed=0)
        with inj.installed():
            d1, _ = gemm.run(a, b)
        assert np.array_equal(d0, d1)
        assert inj.events == []

    def test_hooks_restored_after_context(self):
        import importlib

        # Sibling packages re-export functions under the module names, so
        # attribute access (repro.emulation.gemm) resolves to a function;
        # importlib gives the actual module, as the injector itself does.
        gemm_mod = importlib.import_module("repro.emulation.gemm")
        mma_mod = importlib.import_module("repro.tensorcore.mma")

        inj = FaultInjector(seed=0)
        with inj.installed():
            assert gemm_mod.FAULT_HOOK is inj
            assert mma_mod.FAULT_HOOK is inj
        assert gemm_mod.FAULT_HOOK is None
        assert mma_mod.FAULT_HOOK is None


# ---------------------------------------------------------------------------
# ABFT detect / locate / correct
# ---------------------------------------------------------------------------


class TestAbft:
    def test_clean_run_bit_identical_and_undetected(self, rng):
        a, b = _problem(rng)
        gemm = EmulatedGemm()
        d0, _ = gemm.run(a, b)
        d1, _, report = AbftGemm(gemm=gemm).run(a, b)
        assert np.array_equal(d0, d1)
        assert not report.detected and report.kind == "clean"
        assert report.max_residual_ratio < 1.0

    def test_accumulator_fault_detected_located_corrected(self, rng):
        a, b = _problem(rng)
        gemm = EmulatedGemm()
        d0, _ = gemm.run(a, b)
        protected = AbftGemm(gemm=gemm)
        inj = FaultInjector(seed=1, site=FaultSite.ACCUMULATOR)
        with inj.installed():
            inj.arm(skip=3)
            d, _, report = protected.run(a, b)
        assert inj.injected == 1
        assert report.detected and not report.unrecovered
        # Repaired output is numerically clean.
        tol = 1e-4 * np.abs(d0).max()
        assert np.abs(d.astype(np.float64) - d0.astype(np.float64)).max() < tol

    def test_many_seeds_no_sdc(self, rng):
        """Detection sweep: every significant flip is caught or benign."""
        a, b = _problem(rng, 32, 32, 64)
        gemm = EmulatedGemm()
        d0, _ = gemm.run(a, b)
        protected = AbftGemm(gemm=gemm)
        # A flip is benign (masked) iff its output effect sits below the
        # analytic checksum tolerance — the same bound ABFT detects against.
        from repro.resilience.abft import checksum_tolerances

        tol_row, _ = checksum_tolerances(a, b, tk=16, terms=4, unit_roundoff=2.0**-22)
        thresh = float(tol_row.max())
        detected = masked = 0
        for seed in range(40):
            inj = FaultInjector(seed=seed, site=FaultSite.ACCUMULATOR)
            with inj.installed():
                inj.arm(skip=seed % 16)
                with np.errstate(invalid="ignore", over="ignore"):
                    d, _, report = protected.run(a, b)
            if inj.injected == 0:
                continue
            diff = np.abs(d.astype(np.float64) - d0.astype(np.float64)).max()
            if report.detected:
                detected += 1
                assert not report.unrecovered
                assert diff < thresh  # corrected or recomputed
            else:
                masked += 1
                assert diff < thresh  # undetected ⇒ must be benign
        assert detected > 0

    def test_frag_fault_multi_element_recomputed(self, rng):
        """An operand-register flip corrupts a tile row — uncorrectable in
        place, so ABFT falls back to recompute."""
        m, n, k = 31, 31, 32
        a, b = _problem(rng, m, n, k)
        d0 = run_functional(a, b).d

        def fn(aa, bb, cc):
            return run_functional(aa, bb, cc).d

        recovered = 0
        for skip in (1, 3, 5):  # hi-fragment stores (significant faults)
            inj = FaultInjector(seed=3, site=FaultSite.SHARED)
            with inj.installed():
                inj.arm(skip=skip)
                d, report = abft_run(fn, a, b, tk=8, terms=4)
            assert inj.injected == 1
            if report.detected:
                assert report.kind in ("multi", "data")
                assert not report.unrecovered
                recovered += 1
                assert np.allclose(d, d0, atol=1e-4)
        assert recovered >= 2

    def test_checksum_entry_fault_leaves_data_intact(self, rng):
        """A fault in the appended checksum row/column is repaired without
        touching (or recomputing) the data block."""
        a, b = _problem(rng, 16, 16, 32)
        gemm = EmulatedGemm()
        d0, _ = gemm.run(a, b)

        def fn(aa, bb, cc):
            d, _ = gemm.run(aa, bb, cc)
            d = d.copy()
            d[3, -1] += 1.0  # corrupt a row-checksum entry
            return d

        d, report = abft_run(fn, a, b)
        assert report.detected and report.kind == "row-checksum"
        assert report.recomputes == 0
        assert np.array_equal(d, d0)

    def test_nonfinite_fault_recovered(self, rng):
        a, b = _problem(rng, 16, 16, 32)
        gemm = EmulatedGemm()
        d0, _ = gemm.run(a, b)

        calls = [0]

        def fn(aa, bb, cc):
            d, _ = gemm.run(aa, bb, cc)
            if calls[0] == 0:
                d = d.copy()
                d[2, 5] = np.inf
            calls[0] += 1
            return d

        with np.errstate(invalid="ignore"):
            d, report = abft_run(fn, a, b)
        assert report.detected and not report.unrecovered
        assert np.isfinite(d).all()
        assert np.allclose(d, d0, atol=1e-5)

    def test_abft_kernel_wraps_registry(self, rng):
        a, b = _problem(rng, 32, 32, 32)
        kernel = get_kernel("egemm-tc", abft=True)
        assert isinstance(kernel, AbftKernel)
        d = kernel.compute(a, b)
        assert not kernel.last_report.detected
        plain = get_kernel("egemm-tc").compute(a, b)
        assert np.array_equal(d, plain)
        # Timing reports the augmented launch.
        assert kernel.time(128, 128, 128).seconds >= get_kernel("egemm-tc").time(128, 128, 128).seconds

    def test_clean_sweeps_zero_false_positives(self, rng):
        """Fig 7/8-style fault-free runs must never trip the checksum."""
        for scheme_name in ("egemm-tc", "markidis"):
            protected = AbftGemm(gemm=EmulatedGemm(scheme=get_scheme(scheme_name)))
            for size in (64, 128):
                a, b = _problem(rng, size, size, size)
                _, _, report = protected.run(a, b)
                assert not report.detected, (scheme_name, size)
        for name in ("cublas-cuda-fp32", "cublas-tc-emulation", "cublas-tc-half"):
            kernel = get_kernel(name, abft=True)
            a, b = _problem(rng, 48, 48, 64)
            kernel.compute(a, b)
            assert not kernel.last_report.detected, name


# ---------------------------------------------------------------------------
# empty / degenerate operands (satellite)
# ---------------------------------------------------------------------------


class TestEmptyOperands:
    @pytest.mark.parametrize("shape", [(4, 0, 5), (0, 8, 3), (6, 8, 0)])
    def test_emulated_gemm_degenerate(self, shape):
        m, k, n = shape
        a = np.zeros((m, k), dtype=np.float32)
        b = np.zeros((k, n), dtype=np.float32)
        d, stats = EmulatedGemm().run(a, b)
        assert d.shape == (m, n)
        assert stats.m == m and stats.n == n and stats.k == k

    def test_k_zero_returns_c(self):
        c = np.arange(12, dtype=np.float32).reshape(3, 4)
        d, _ = EmulatedGemm().run(
            np.zeros((3, 0), dtype=np.float32), np.zeros((0, 4), dtype=np.float32), c
        )
        assert np.array_equal(d, c)

    def test_batched_k_zero(self):
        a = np.zeros((2, 4, 0), dtype=np.float32)
        b = np.zeros((2, 0, 5), dtype=np.float32)
        d, stats = EmulatedGemm().run_batched(a, b)
        assert d.shape == (2, 4, 5) and not d.any()
        assert stats.batch == 2

    @pytest.mark.parametrize(
        "name", ["egemm-tc", "markidis", "cublas-tc-emulation", "cublas-tc-half", "ozaki-int8"]
    )
    def test_kernels_k_zero(self, name):
        a = np.zeros((4, 0), dtype=np.float32)
        b = np.zeros((0, 5), dtype=np.float32)
        d = get_kernel(name).compute(a, b)
        assert d.shape == (4, 5) and not np.asarray(d).any()

    def test_ozaki_gemm_empty_k(self):
        d = ozaki_gemm(np.zeros((3, 0), dtype=np.float32), np.zeros((0, 2), dtype=np.float32))
        assert d.shape == (3, 2) and not d.any()


# ---------------------------------------------------------------------------
# out-of-range / non-finite operands across the kernels (satellite)
# ---------------------------------------------------------------------------


class TestHostileOperands:
    def test_assess_operand(self):
        h = assess_operand(np.array([[1.0, 1e6]], dtype=np.float32))
        assert h.finite and h.overflow and h.needs_escalation
        h = assess_operand(np.array([[1.0, 1e-9]], dtype=np.float32))
        assert h.underflow and h.needs_escalation
        h = assess_operand(np.array([[np.nan, 1.0]], dtype=np.float32))
        assert not h.finite and h.nonfinite_count == 1

    @pytest.mark.parametrize(
        "name", ["egemm-tc", "markidis", "cublas-tc-emulation", "cublas-tc-half"]
    )
    def test_fp16_kernels_overflow_raw(self, name, rng):
        """Documents the hazard the runner exists for: raw emulated kernels
        produce non-finite output on out-of-fp16-range operands."""
        a = rng.standard_normal((16, 32)).astype(np.float32) * 1e6
        b = rng.standard_normal((32, 16)).astype(np.float32)
        with np.errstate(invalid="ignore", over="ignore"):
            d = get_kernel(name).compute(a, b)
        assert not np.isfinite(d).all()

    @pytest.mark.parametrize("escalation", ["scaled", "ozaki"])
    def test_runner_rescues_overflow(self, escalation, rng):
        a = rng.standard_normal((24, 32)).astype(np.float32) * 1e7
        b = rng.standard_normal((32, 24)).astype(np.float32)
        result = ResilientRunner(escalation=escalation).run(a, b)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        assert result.escalation == escalation
        assert np.isfinite(result.d).all()
        rel = np.abs(result.d - ref).max() / np.abs(ref).max()
        assert rel < 1e-5

    def test_runner_rescues_underflow_with_ozaki(self, rng):
        a = rng.standard_normal((16, 32)).astype(np.float32) * np.float32(2.0**-30)
        b = rng.standard_normal((32, 16)).astype(np.float32)
        result = ResilientRunner(escalation="ozaki").run(a, b)
        ref = a.astype(np.float64) @ b.astype(np.float64)
        assert np.abs(result.d - ref).max() <= 1e-4 * np.abs(ref).max()

    def test_runner_rejects_nan_and_inf(self, rng):
        a, b = _problem(rng, 8, 8, 8)
        bad = a.copy()
        bad[0, 0] = np.nan
        with pytest.raises(InputValidationError, match="non-finite"):
            ResilientRunner().run(bad, b)
        bad[0, 0] = np.inf
        with pytest.raises(InputValidationError):
            ResilientRunner().run(a, bad.T[:8, :8] * np.inf)

    def test_escalation_skipped_for_fp32_kernel(self, rng):
        a = rng.standard_normal((8, 8)).astype(np.float32) * 1e6
        b = rng.standard_normal((8, 8)).astype(np.float32)
        result = ResilientRunner(chain=("cublas-cuda-fp32",)).run(a, b)
        assert result.escalation == "none"  # fp32 path has no fp16 hazard


# ---------------------------------------------------------------------------
# resilient runner: retry, fallback, timeout
# ---------------------------------------------------------------------------


class TestResilientRunner:
    def test_happy_path_single_attempt(self, rng):
        a, b = _problem(rng, 16, 16, 32)
        result = ResilientRunner().run(a, b)
        assert result.kernel == "egemm-tc"
        assert result.total_attempts == 1 and not result.fell_back

    def test_abft_protected_run(self, rng):
        a, b = _problem(rng, 24, 24, 48)
        result = ResilientRunner(abft=True).run(a, b)
        assert result.attempts[0].abft_kind == "clean"
        # standard-normal operands carry sub-2^-3 magnitudes, so the
        # runner now conditions them (subnormal-risk escalation); ABFT
        # must not perturb the data result of that same arithmetic
        assert result.escalation == "scaled"
        plain = ResilientRunner(abft=False).run(a, b)
        assert np.array_equal(result.d, plain.d)

    def test_fallback_chain_with_backoff(self, rng, monkeypatch):
        a, b = _problem(rng, 8, 8, 8)
        sleeps: list[float] = []

        import repro.kernels.registry as registry

        class FailingKernel:
            info = get_kernel("egemm-tc").info

            def compute(self, *args):
                raise RuntimeError("synthetic kernel failure")

        real_get = registry.get_kernel
        monkeypatch.setitem(registry.KERNELS, "always-fails", FailingKernel)

        runner = ResilientRunner(
            chain=("always-fails", "cublas-cuda-fp32"),
            attempts_per_kernel=3,
            backoff_s=0.01,
            backoff_cap_s=0.02,
            sleep=sleeps.append,
        )
        result = runner.run(a, b)
        assert result.kernel == "cublas-cuda-fp32"
        assert result.fell_back
        failures = [att for att in result.attempts if not att.ok]
        assert len(failures) == 3
        assert all("synthetic kernel failure" in att.error for att in failures)
        # Bounded exponential backoff: 0.01, then capped at 0.02.
        assert sleeps == [0.01, 0.02]
        assert real_get("cublas-cuda-fp32").info.precision == "single"

    def test_exhausted_chain_raises(self, rng, monkeypatch):
        import repro.kernels.registry as registry

        class FailingKernel:
            info = get_kernel("egemm-tc").info

            def compute(self, *args):
                raise RuntimeError("nope")

        monkeypatch.setitem(registry.KERNELS, "always-fails", FailingKernel)
        a, b = _problem(rng, 8, 8, 8)
        runner = ResilientRunner(
            chain=("always-fails",), attempts_per_kernel=2, sleep=lambda s: None
        )
        with pytest.raises(ExhaustedFallbacksError, match="nope"):
            runner.run(a, b)

    def test_nonfinite_output_triggers_fallback(self, rng, monkeypatch):
        import repro.kernels.registry as registry

        class InfKernel:
            info = get_kernel("cublas-cuda-fp32").info  # precision=single: no escalation

            def compute(self, a, b, c=None):
                return np.full((a.shape[0], b.shape[1]), np.inf, dtype=np.float32)

        monkeypatch.setitem(registry.KERNELS, "inf-kernel", InfKernel)
        a, b = _problem(rng, 8, 8, 8)
        runner = ResilientRunner(
            chain=("inf-kernel", "cublas-cuda-fp32"), attempts_per_kernel=1, sleep=lambda s: None
        )
        result = runner.run(a, b)
        assert result.kernel == "cublas-cuda-fp32"
        assert "non-finite" in result.attempts[0].error

    def test_stage_timeout(self):
        import time as _time

        with pytest.raises(StageTimeoutError):
            call_with_timeout(_time.sleep, 0.05, 5.0)
        assert call_with_timeout(lambda: 42, 0.5) == 42
        assert call_with_timeout(lambda: 42, None) == 42

    def test_runner_stage_timeout_falls_back(self, rng, monkeypatch):
        import repro.kernels.registry as registry
        import time as _time

        class SlowKernel:
            info = get_kernel("cublas-cuda-fp32").info

            def compute(self, a, b, c=None):
                _time.sleep(5.0)
                return np.zeros((a.shape[0], b.shape[1]), dtype=np.float32)

        monkeypatch.setitem(registry.KERNELS, "slow-kernel", SlowKernel)
        a, b = _problem(rng, 8, 8, 8)
        runner = ResilientRunner(
            chain=("slow-kernel", "cublas-cuda-fp32"),
            attempts_per_kernel=1,
            stage_timeout_s=0.1,
            sleep=lambda s: None,
        )
        result = runner.run(a, b)
        assert result.kernel == "cublas-cuda-fp32"
        assert "StageTimeoutError" in result.attempts[0].error


# ---------------------------------------------------------------------------
# campaign smoke (the CI job runs the CLI; this pins the API contract)
# ---------------------------------------------------------------------------


class TestCampaign:
    def test_quick_campaign_passes(self, tmp_path):
        out = tmp_path / "campaign.json"
        report = run_campaign(faults=40, seed=0, quick=True, out=out)
        assert report["summary"]["sdc"] == 0
        assert report["summary"]["false_positives"] == 0
        assert report["summary"]["pass"]
        assert report["accumulator"]["detection_rate"] >= 0.99
        assert out.exists()

    def test_register_exposure_ranks_policies(self):
        from repro.gpu.registers import egemm_stage_usage, fault_exposure
        from repro.gpu.spec import TESLA_T4

        usage = egemm_stage_usage(64, 32, 8, 128, 128, 32)
        reuse = fault_exposure(usage, TESLA_T4, "stage-reuse")
        naive = fault_exposure(usage, TESLA_T4, "naive")
        assert reuse.total_bits < naive.total_bits
        assert reuse.spilled_bits == 0
        assert naive.spill_fraction > 0


# ---------------------------------------------------------------------------
# parallel_map failure semantics (satellite)
# ---------------------------------------------------------------------------


def _boom(x):  # module-level: picklable
    raise ValueError(f"work error on {x}")


def _double(x):
    return 2 * x


class TestParallelMapFailures:
    def test_work_error_propagates_not_swallowed(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        with pytest.raises(ValueError, match="work error"):
            parallel_map(_boom, [1, 2, 3])

    def test_unpicklable_fn_logs_and_falls_back(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_JOBS", "2")
        with caplog.at_level(logging.WARNING, logger="repro.perf.parallel"):
            assert parallel_map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert any("not picklable" in rec.message for rec in caplog.records)

    def test_unpicklable_item_logs_and_falls_back(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_JOBS", "2")
        items = [lambda: 1, lambda: 2]  # lambdas as items: unpicklable
        with caplog.at_level(logging.WARNING, logger="repro.perf.parallel"):
            assert parallel_map(lambda f: f(), items) == [1, 2]

    def test_broken_pool_falls_back_serially(self, monkeypatch, caplog):
        from concurrent.futures.process import BrokenProcessPool
        import repro.perf.parallel as par

        class DyingPool:
            def __init__(self, *a, **kw):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, work, timeout=None):
                raise BrokenProcessPool("worker died")

        monkeypatch.setattr(par, "ProcessPoolExecutor", DyingPool)
        with caplog.at_level(logging.WARNING, logger="repro.perf.parallel"):
            assert par.parallel_map(_double, [1, 2, 3], jobs=2) == [2, 4, 6]
        assert any("pool broke" in rec.message for rec in caplog.records)

    def test_pool_path_still_works(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert parallel_map(_double, list(range(8))) == [2 * i for i in range(8)]


# ---------------------------------------------------------------------------
# split-cache staleness guard (satellite)
# ---------------------------------------------------------------------------


class TestSplitCacheStaleness:
    def test_frozen_view_mutated_through_base_recomputes(self, rng):
        base = rng.standard_normal((32, 32)).astype(np.float32)
        frozen = base.view()
        frozen.flags.writeable = False

        cache = SplitCache()
        plan1 = cache.get(frozen, "round", round_split)
        assert cache.stats.misses == 1
        # Mutate through the still-writeable base: identity key unchanged,
        # content changed.
        base[0, 0] += 100.0
        plan2 = cache.get(frozen, "round", round_split)
        assert plan2 is not plan1
        assert cache.stats.stale == 1
        # The recomputed plan reflects the new content.
        hi = plan2.pair.hi.astype(np.float64) + plan2.pair.lo.astype(np.float64)
        assert abs(hi[0, 0] - float(frozen[0, 0])) < 0.1

    def test_unchanged_frozen_array_still_hits(self, rng):
        x = rng.standard_normal((16, 16)).astype(np.float32)
        x.flags.writeable = False
        cache = SplitCache()
        p1 = cache.get(x, "round", round_split)
        p2 = cache.get(x, "round", round_split)
        assert p1 is p2
        assert cache.stats.hits == 1 and cache.stats.stale == 0

    def test_writeable_array_mutation_already_safe(self, rng):
        x = rng.standard_normal((16, 16)).astype(np.float32)
        cache = SplitCache()
        p1 = cache.get(x, "round", round_split)
        x[0, 0] += 1.0
        p2 = cache.get(x, "round", round_split)
        assert p1 is not p2  # content key changed


# ---------------------------------------------------------------------------
# pickling / integration odds and ends
# ---------------------------------------------------------------------------


class TestIntegration:
    def test_fault_event_roundtrips(self):
        from repro.resilience.faults import FaultEvent

        ev = FaultEvent(site="frag", call_index=3, flat_index=17, bit=12, before=1.0, after=-1.0)
        clone = pickle.loads(pickle.dumps(ev))
        assert clone == ev
        assert ev.as_dict()["bit"] == 12

    def test_public_api_exported(self):
        import repro

        for name in ("ResilientRunner", "AbftGemm", "AbftKernel", "FaultInjector", "run_campaign"):
            assert hasattr(repro, name)

    def test_resilience_error_hierarchy(self):
        assert issubclass(InputValidationError, ResilienceError)
        assert issubclass(InputValidationError, ValueError)
        assert issubclass(StageTimeoutError, ResilienceError)
        assert issubclass(ExhaustedFallbacksError, ResilienceError)
