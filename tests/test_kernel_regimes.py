"""Regime tests for the kernel timing models and profiling sweeps —
boundary behaviours the headline figures do not exercise."""

import pytest

from repro.gpu.engine import LAUNCH_OVERHEAD_S
from repro.gpu.spec import RTX6000, TESLA_T4
from repro.kernels.cublas import CublasCudaFp32, CublasTcEmulation, CublasTcHalf, gemm_dram_bytes
from repro.kernels.egemm import EgemmTcKernel, split_pass_seconds
from repro.kernels.markidis import MarkidisKernel
from repro.kernels.sdk import SdkCudaFp32
from repro.profiling.sweep import sweep_distribution, sweep_k


class TestSmallSizeRegime:
    def test_launch_overhead_dominates_tiny_gemm(self):
        """At 64^3 the useful work is microseconds; timing is floored by
        launch overhead, so TFLOPS collapse."""
        k = EgemmTcKernel()
        t = k.time(64, 64, 64)
        assert t.seconds >= LAUNCH_OVERHEAD_S
        assert k.tflops(64, 64, 64) < 1.0

    def test_single_block_grid(self):
        k = EgemmTcKernel()
        t = k.time(128, 128, 128)
        assert t.occupancy is not None
        assert t.waves == 1

    def test_all_kernels_handle_tiny_inputs(self):
        for kern in (
            EgemmTcKernel(),
            CublasCudaFp32(),
            CublasTcHalf(),
            CublasTcEmulation(),
            SdkCudaFp32(),
            MarkidisKernel(),
        ):
            t = kern.time(32, 32, 32)
            assert t.seconds > 0


class TestSkewBoundaries:
    def test_cliff_requires_both_conditions(self):
        """Split-K selection needs k >= 2*max(m,n) AND k >= 8192."""
        half = CublasTcHalf()
        # large k but not 2x the other dims: no cliff
        no_cliff = half.tflops(8192, 8192, 8192)
        # k = 2*max but below the absolute threshold: no cliff
        small = half.tflops(2048, 2048, 4096)
        # both conditions: cliff
        cliff = half.tflops(4096, 4096, 8192)
        assert cliff < 0.8 * no_cliff
        assert small > cliff

    def test_emulation_inherits_custom_half_kernel(self):
        custom = CublasTcHalf(efficiency=0.3)
        emu = CublasTcEmulation(half_kernel=custom)
        slower = emu.tflops(4096, 4096, 4096)
        default = CublasTcEmulation().tflops(4096, 4096, 4096)
        assert slower < default


class TestTrafficModel:
    def test_gemm_dram_bytes_scales_with_k(self):
        a = gemm_dram_bytes(4096, 4096, 4096, 2, 128, TESLA_T4)
        b = gemm_dram_bytes(4096, 4096, 8192, 2, 128, TESLA_T4)
        assert b > 1.5 * a

    def test_element_size_proportional(self):
        half = gemm_dram_bytes(4096, 4096, 4096, 2, 128, TESLA_T4)
        single = gemm_dram_bytes(4096, 4096, 4096, 4, 128, TESLA_T4)
        assert single > 1.5 * half  # C term is fp32 in both

    def test_bigger_tiles_less_traffic(self):
        small = gemm_dram_bytes(8192, 8192, 8192, 4, 64, TESLA_T4)
        large = gemm_dram_bytes(8192, 8192, 8192, 4, 256, TESLA_T4)
        assert large < small

    def test_split_pass_linear_in_elements(self):
        s1 = split_pass_seconds(1024, 1024, 1024, TESLA_T4) - LAUNCH_OVERHEAD_S
        s2 = split_pass_seconds(2048, 2048, 2048, TESLA_T4) - LAUNCH_OVERHEAD_S
        assert s2 == pytest.approx(4 * s1, rel=0.01)

    def test_split_pass_faster_on_wider_bus(self):
        assert split_pass_seconds(4096, 4096, 4096, RTX6000) < split_pass_seconds(
            4096, 4096, 4096, TESLA_T4
        )


class TestProfilingSweeps:
    def test_agreement_decays_with_k(self):
        """Longer sequential accumulation drifts further from the wide
        accumulator: min agreement is non-increasing in k."""
        points = sweep_k(ks=(4, 16, 64), trials=60)
        mins = [p.min_bits for p in points]
        assert mins == sorted(mins, reverse=True)
        assert mins[0] >= 21  # short dots agree at/above the paper's bar

    def test_wmma_k16_hits_paper_number(self):
        """At the WMMA k=16 the tail of the agreement distribution sits
        at the paper's 21-bit floor (the minimum needs enough trials to
        reach the tail — the paper used 10,000)."""
        (point,) = sweep_k(ks=(16,), trials=300)
        assert 21 <= point.min_bits <= 22

    def test_signed_inputs_cost_bits(self):
        """Cancellation magnifies relative disagreement — why the
        workflow probes with positive inputs."""
        positive, signed = sweep_distribution(trials=120)
        assert positive.min_bits >= signed.min_bits
        assert positive.mean_bits > signed.mean_bits - 0.5
