"""Tests for the experiment harness — every table and figure reproduces
the paper's qualitative result (exact comparisons where the paper gives
exact values, banded comparisons for measured quantities)."""

import pytest

from repro.experiments import (
    format_all_tables,
    geomean,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_performance_anchors,
    run_precision_test,
    run_profiling,
    run_table1,
    run_table2,
    run_table2_measured,
    run_table3,
    run_table4,
    run_table5,
)
from repro.experiments.common import Series, format_table
from repro.gpu.spec import RTX6000


class TestCommon:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, -1.0])

    def test_series_ratio(self):
        a = Series("a", (1, 2), [4.0, 9.0])
        b = Series("b", (1, 2), [2.0, 3.0])
        assert a.ratio_to(b) == [2.0, 3.0]
        with pytest.raises(ValueError):
            a.ratio_to(Series("c", (1, 3), [1.0, 1.0]))

    def test_series_length_check(self):
        with pytest.raises(ValueError):
            Series("bad", (1, 2, 3), [1.0])

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out


class TestTables:
    def test_table1_exact(self):
        rows = {r["data_type"]: r for r in run_table1()}
        assert rows["extended"]["mantissa"] == 21
        assert rows["markidis"]["mantissa"] == 20

    def test_table2_savings(self):
        rows = {r["type"]: r for r in run_table2()}
        assert rows["Alo"]["saving"] == "8.0x"
        assert rows["C"]["saving"] == "4.0x"

    def test_table2_measured_direction(self):
        measured = run_table2_measured(n=48)
        assert measured["measured_saving"] > 2.0
        assert measured["frag_hit_rate"] > 0.5

    def test_table3_exact(self):
        assert {r["resource"]: r["budget"] for r in run_table3()} == {
            "Shared Memory Size": "64 KB",
            "FRAG/Register Size": "256 KB",
            "Peak Computation": "64 TFLOPS",
            "L2 Cache Speed": "750 GB/s",
        }

    def test_table4_exact(self):
        rows = {r["item"]: r["value"] for r in run_table4()}
        assert rows["(bm, bn, bk)"] == "(128, 128, 32)"
        assert rows["(wm, wn, wk)"] == "(64, 32, 8)"

    def test_table5_has_seven_rows(self):
        assert len(run_table5()) == 7

    def test_format_all_tables_renders(self):
        text = format_all_tables()
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5"):
            assert marker in text


class TestProfilingExperiment:
    def test_headline_claim(self):
        exp = run_profiling(trials=400)
        assert exp.supports_extended_precision  # d_FLOAT >= 21 bits always
        assert exp.float_min_bits >= 21
        assert exp.half_mean_bits < 15
        assert "extended precision" in exp.report()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(sizes=(128, 256, 512), seed=0, samples=3)

    def test_error_ordering(self, result):
        # Half is categorically worse at every size; the round-vs-truncate
        # gap is statistical (the paper averages 10 runs), so compare sums.
        for e, h in zip(result.egemm.y, result.half.y):
            assert e < h / 50
        assert sum(result.egemm.y) <= sum(result.markidis.y)

    def test_large_error_reduction_vs_half(self, result):
        """Paper: ~350x average (82x at the largest size)."""
        assert result.avg_half_over_egemm > 100

    def test_round_split_gain_vs_markidis(self, result):
        """Paper: 2.33x.  Banded: the gain fluctuates with the draw."""
        assert 1.0 <= result.avg_markidis_over_egemm < 5.0

    def test_error_grows_with_size(self, result):
        assert result.egemm.y[-1] > result.egemm.y[0]
        assert result.half.y[-1] > result.half.y[0]

    def test_table_renders(self, result):
        assert "EGEMM-TC" in result.table()


class TestFig8:
    @pytest.fixture(scope="class")
    def t4(self):
        return run_fig8()

    def test_avg_speedup_vs_fp32(self, t4):
        """Paper: 3.13x average."""
        assert 2.5 < t4.avg_speedup_vs_fp32 < 3.7

    def test_avg_speedup_vs_emulation(self, t4):
        """Paper: 1.35x average."""
        assert 1.2 < t4.avg_speedup_vs_emulation < 1.6

    def test_speedup_grows_with_size(self, t4):
        ratios = t4.egemm.ratio_to(t4.cublas_fp32)
        assert ratios[-1] > ratios[0]

    def test_rtx6000_same_story(self):
        rtx = run_fig8(RTX6000)
        assert rtx.avg_speedup_vs_fp32 > 2.0
        assert rtx.egemm.y[-1] > run_fig8().egemm.y[-1]  # absolute TFLOPS higher

    def test_egemm_peak_near_12(self, t4):
        assert t4.egemm.y[-1] == pytest.approx(12.0, rel=0.08)


class TestFig9:
    def test_k_skew_cliff(self):
        """Fig 9a: emulation baseline collapses past 4096x4096x8192;
        EGEMM-TC stays flat."""
        r = run_fig9("NxNx2N")
        emu = dict(zip(r.bases, r.cublas_tc_emulation.y))
        assert emu[4096] < 0.8 * emu[2048]
        egemm = dict(zip(r.bases, r.egemm.y))
        assert egemm[4096] > egemm[2048]
        assert r.avg_speedup_vs_emulation > 1.2  # paper: 1.33x
        assert 2.2 < r.avg_speedup_vs_fp32 < 3.6  # paper: 2.89x

    def test_m_skew_no_cliff(self):
        """Fig 9b: enlarging M keeps the emulation baseline healthy but
        still behind EGEMM-TC."""
        r = run_fig9("4NxNxN", bases=(1024, 2048, 4096))
        assert all(e > 0 for e in r.cublas_tc_emulation.y)
        assert r.avg_speedup_vs_emulation > 1.0
        assert r.avg_speedup_vs_fp32 > 2.2  # paper: 2.9x

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            run_fig9("NxN")


class TestFig10:
    def test_headline_ratios(self):
        r = run_fig10()
        assert 9 < r.avg_speedup_vs_sdk < 13  # paper: 11.18x
        assert 2.4 < r.avg_speedup_vs_markidis < 3.6  # paper: 3.0x

    def test_sdk_flat_at_one(self):
        r = run_fig10()
        assert all(0.8 < v < 1.3 for v in r.sdk.y)


class TestFig11:
    def test_latency_hiding_benefit(self):
        r = run_fig11()
        assert 1.08 < r.avg_speedup < 1.4  # paper: 1.14x
        assert all(w > wo for w, wo in zip(r.with_hiding.y, r.without_hiding.y))


class TestFig12:
    def test_kmeans_curve(self):
        r = run_fig12("kmeans")
        assert r.speedup.y == sorted(r.speedup.y)  # grows with data size
        assert 1.7 < r.max_speedup < 2.1  # paper: 1.82x at 16384
        assert 1.2 < r.speedup.y[0] < 1.6  # paper: 1.3x at 2048

    def test_knn_curve(self):
        r = run_fig12("knn")
        assert r.speedup.y == sorted(r.speedup.y)
        assert 2.0 < r.max_speedup < 2.7  # paper: ~2.4x

    def test_gemm_fraction_rises(self):
        r = run_fig12("kmeans")
        assert r.baseline_gemm_fraction[-1] > r.baseline_gemm_fraction[0]

    def test_unknown_app(self):
        with pytest.raises(ValueError):
            run_fig12("fft")


class TestAppendix:
    def test_precision_test_ratio(self):
        """Artifact: 'the error is reduced by more than 500x' at N=1024;
        at CI size (256) the reduction is still >100x."""
        r = run_precision_test(n=256)
        assert r.ratio < 0.01
        assert r.max_emulation_error < r.max_half_cublas_error
        assert "Ratio" in r.lines()[-1]

    def test_performance_anchors(self):
        anchors = run_performance_anchors()
        assert anchors.egemm == pytest.approx(12.0, rel=0.1)
        assert anchors.cublas_fp32 == pytest.approx(4.0, rel=0.15)
        assert anchors.sdk_fp32 == pytest.approx(1.0, rel=0.15)
