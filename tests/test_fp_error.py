"""Unit tests for repro.fp.error — Eq. 10 error metrics."""

import math

import numpy as np
import pytest

from repro.fp.error import ErrorReport, compare_to_reference, error_ratio, max_error, mean_error


class TestMaxError:
    def test_zero_for_identical(self, rng):
        x = rng.normal(0, 1, (8, 8)).astype(np.float32)
        assert max_error(x, x) == 0.0

    def test_picks_the_largest_deviation(self):
        ref = np.zeros((2, 2))
        val = np.array([[0.0, 0.1], [-0.3, 0.2]])
        assert max_error(val, ref) == pytest.approx(0.3)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            max_error(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_empty_arrays(self):
        assert max_error(np.zeros((0,)), np.zeros((0,))) == 0.0


class TestMeanError:
    def test_mean_of_absolute_deviations(self):
        ref = np.zeros(4)
        val = np.array([1.0, -1.0, 2.0, 0.0])
        assert mean_error(val, ref) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_error(np.zeros(3), np.zeros(4))


class TestErrorRatio:
    def test_basic_ratio(self):
        assert error_ratio(0.00025177, 0.13489914) == pytest.approx(0.00186636, rel=1e-4)

    def test_zero_baseline_gives_nan(self):
        assert math.isnan(error_ratio(1.0, 0.0))


class TestReport:
    def test_compare_to_reference(self, rng):
        ref = rng.normal(0, 1, (4, 4))
        val = ref + 0.5
        report = compare_to_reference("probe", val, ref)
        assert isinstance(report, ErrorReport)
        assert report.label == "probe"
        assert report.max_error == pytest.approx(0.5)
        assert report.mean_error == pytest.approx(0.5)
        assert "probe" in str(report)
