"""Tests for register allocation (§5.2), occupancy, and memory accounting."""

import numpy as np
import pytest

from repro.gpu.memory import GlobalMemory, SharedMemory, SharedMemoryOverflow
from repro.gpu.occupancy import BlockResources, occupancy
from repro.gpu.registers import StageUsage, allocate, egemm_stage_usage
from repro.gpu.spec import TESLA_T4


class TestRegisterAllocation:
    def test_paper_design_point_uses_232_registers(self):
        """§5.2: 'we utilize 232 out of 256 registers on each thread'."""
        usage = egemm_stage_usage(wm=64, wn=32, wk=8, bm=128, bn=128, bk=32)
        result = allocate(usage, TESLA_T4, policy="stage-reuse")
        assert result.registers_per_thread == 232
        assert not result.spills

    def test_naive_allocation_spills_at_design_point(self):
        """Without cross-stage reuse the same kernel would spill — the
        'heavy slow down' motivation of §5.2."""
        usage = egemm_stage_usage(wm=64, wn=32, wk=8, bm=128, bn=128, bk=32)
        result = allocate(usage, TESLA_T4, policy="naive")
        assert result.spills
        assert result.spilled_registers > 0
        assert result.spill_bytes_per_thread == result.spilled_registers * 4

    def test_wider_warp_tile_spills_even_with_reuse(self):
        """(wm, wn) = (64, 64) busts the per-thread budget — why the
        solver lands on (64, 32)."""
        usage = egemm_stage_usage(wm=64, wn=64, wk=8, bm=256, bn=128, bk=8)
        result = allocate(usage, TESLA_T4, policy="stage-reuse")
        assert result.spills

    def test_reuse_never_worse_than_naive(self):
        usage = StageUsage(context=10, load_c=50, compute=100, store_c=50)
        reuse = allocate(usage, TESLA_T4, policy="stage-reuse")
        naive = allocate(usage, TESLA_T4, policy="naive")
        assert reuse.registers_per_thread <= naive.registers_per_thread

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            allocate(StageUsage(1, 1, 1, 1), TESLA_T4, policy="magic")


class TestOccupancy:
    def test_paper_config_one_block_per_sm(self):
        """Table 4: 1 active block per SM at the design point."""
        res = BlockResources(threads=256, shared_mem_bytes=36 * 1024, registers_per_thread=232)
        occ = occupancy(res, TESLA_T4)
        assert occ.blocks_per_sm == 1
        assert occ.active_warps_per_sm == 8

    def test_small_block_higher_occupancy(self):
        res = BlockResources(threads=128, shared_mem_bytes=8 * 1024, registers_per_thread=64)
        occ = occupancy(res, TESLA_T4)
        assert occ.blocks_per_sm >= 4

    def test_limiting_resource_identified(self):
        res = BlockResources(threads=64, shared_mem_bytes=60 * 1024, registers_per_thread=32)
        assert occupancy(res, TESLA_T4).limiting_resource == "shared_memory"

    def test_register_limit_violation_raises(self):
        res = BlockResources(threads=256, shared_mem_bytes=1024, registers_per_thread=300)
        with pytest.raises(ValueError, match="registers"):
            occupancy(res, TESLA_T4)

    def test_oversized_block_raises(self):
        res = BlockResources(threads=256, shared_mem_bytes=100 * 1024, registers_per_thread=32)
        with pytest.raises(ValueError):
            occupancy(res, TESLA_T4)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            occupancy(BlockResources(0, 0, 0), TESLA_T4)


class TestMemory:
    def test_global_memory_traffic(self, rng):
        gmem = GlobalMemory()
        gmem.bind("A", rng.uniform(0, 1, (8, 8)).astype(np.float32))
        tile = gmem.load("A", slice(0, 4), slice(0, 4))
        assert tile.shape == (4, 4)
        assert gmem.log.global_load == 4 * 4 * 4
        gmem.store("A", slice(0, 4), slice(0, 4), tile * 2)
        assert gmem.log.global_store == 4 * 4 * 4
        assert gmem.log.global_total == 128

    def test_global_store_shape_check(self, rng):
        gmem = GlobalMemory()
        gmem.bind("A", np.zeros((8, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            gmem.store("A", slice(0, 4), slice(0, 4), np.zeros((2, 2), dtype=np.float32))

    def test_load_returns_copy(self):
        gmem = GlobalMemory()
        gmem.bind("A", np.ones((4, 4), dtype=np.float32))
        tile = gmem.load("A", slice(0, 2), slice(0, 2))
        tile[:] = 5
        assert gmem.array("A")[0, 0] == 1.0

    def test_shared_memory_capacity(self):
        shared = SharedMemory(capacity_bytes=1024)
        shared.store("x", np.zeros((16, 16), dtype=np.float16))  # 512 B
        with pytest.raises(SharedMemoryOverflow):
            shared.store("y", np.zeros((16, 32), dtype=np.float16))  # +1024 B

    def test_shared_rebind_same_name_replaces(self):
        shared = SharedMemory(capacity_bytes=1024)
        shared.store("x", np.zeros((16, 16), dtype=np.float16))
        shared.store("x", np.ones((16, 16), dtype=np.float16))  # replace, no overflow
        assert shared.used_bytes == 512
        assert float(shared.load("x")[0, 0]) == 1.0

    def test_shared_traffic_log(self):
        shared = SharedMemory(capacity_bytes=4096)
        shared.store("x", np.zeros((16, 16), dtype=np.float16))
        shared.load("x")
        shared.load("x", slice(0, 8), slice(0, 8))
        assert shared.log.shared_store == 512
        assert shared.log.shared_load == 512 + 128

    def test_traffic_merge(self):
        a = SharedMemory(capacity_bytes=4096)
        a.store("x", np.zeros(4, dtype=np.float32))
        b = SharedMemory(capacity_bytes=4096)
        b.store("y", np.zeros(4, dtype=np.float32))
        merged = a.log.merged(b.log)
        assert merged.shared_store == 32
        assert merged.shared_total == 32

    def test_free(self):
        shared = SharedMemory(capacity_bytes=512)
        shared.store("x", np.zeros((16, 16), dtype=np.float16))
        shared.free("x")
        assert shared.used_bytes == 0
