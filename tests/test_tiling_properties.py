"""Property-based tests over randomly drawn legal tiling configurations.

The paper's design space is 6-dimensional; the fixed-point tests pin the
published operating point, while these hypothesis tests assert the
structural invariants at arbitrary legal points — the properties the
solver, the planner, the stream builder and the code generator must
preserve everywhere, not just at Table 4.
"""

from hypothesis import given, settings, strategies as st

from repro.gpu.isa import Opcode
from repro.gpu.sass import validate
from repro.gpu.scheduler import schedule
from repro.gpu.spec import TESLA_T4
from repro.model.resources import compute_intensity
from repro.tensorize.codegen import build_register_map, generate_iteration_sass
from repro.tensorize.kernel import build_gemm_stream
from repro.tensorize.plan import TensorizationPlan
from repro.tensorize.tiling import TilingConfig


@st.composite
def legal_tilings(draw):
    """Random tiling configurations satisfying the structural rules."""
    wm = draw(st.sampled_from([16, 32, 64]))
    wn = draw(st.sampled_from([8, 16, 32]))
    wk = draw(st.sampled_from([8, 16]))
    grid_m = draw(st.integers(1, 2))
    grid_n = draw(st.integers(1, 4))
    bk = wk * draw(st.integers(1, 4))
    return TilingConfig(bm=wm * grid_m, bn=wn * grid_n, bk=bk, wm=wm, wn=wn, wk=wk)


class TestTilingInvariants:
    @given(legal_tilings())
    @settings(max_examples=60, deadline=None)
    def test_structural_consistency(self, cfg):
        gm, gn = cfg.warp_grid
        assert gm * gn == cfg.warps_per_block
        assert cfg.threads_per_block == 32 * cfg.warps_per_block
        assert cfg.shared_mem_bytes > 0
        assert cfg.compute_intensity == compute_intensity(cfg.bm, cfg.bn)

    @given(legal_tilings(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_grid_covers_matrix(self, cfg, scale):
        m = cfg.bm * scale + 1  # deliberately non-divisible
        n = cfg.bn * scale
        gm, gn = cfg.grid_dims(m, n)
        assert gm * cfg.bm >= m
        assert gn * cfg.bn >= n
        assert cfg.grid_blocks(m, n) == gm * gn

    @given(legal_tilings())
    @settings(max_examples=60, deadline=None)
    def test_eq2_eq3_signs_and_ratio(self, cfg):
        assert cfg.ldg_bytes_per_iteration == 4 * (cfg.bm + cfg.bn) * cfg.bk
        assert cfg.flops_per_iteration == 8 * cfg.bm * cfg.bn * cfg.bk
        # Eq. 4 == Eq. 3 / Eq. 2 (issued FLOPs per global byte).
        assert cfg.flops_per_iteration / cfg.ldg_bytes_per_iteration == cfg.compute_intensity / 1


class TestPlanInvariants:
    @given(legal_tilings(), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_counts_positive_and_caching_helps(self, cfg, scale):
        plan_on = TensorizationPlan(cfg.bm * scale, cfg.bn * scale, cfg.bk * scale, cfg)
        plan_off = TensorizationPlan(
            cfg.bm * scale, cfg.bn * scale, cfg.bk * scale, cfg, frag_caching=False
        )
        assert plan_on.ldg_per_iteration() > 0
        assert plan_on.hmma_per_iteration() > 0
        assert plan_off.lds_per_iteration() >= plan_on.lds_per_iteration()

    @given(legal_tilings())
    @settings(max_examples=40, deadline=None)
    def test_dram_bytes_bounded_by_no_reuse(self, cfg):
        plan = TensorizationPlan(cfg.bm * 4, cfg.bn * 4, cfg.bk * 4, cfg)
        per_block = plan.dram_bytes_per_block(TESLA_T4)
        no_reuse = (
            plan.k_iterations * cfg.ldg_bytes_per_iteration + plan.c_io_bytes_per_block()
        )
        assert 0 < per_block <= no_reuse * 1.01


class TestStreamInvariants:
    @given(legal_tilings(), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_identical_counts_and_hiding_never_slower(self, cfg, iters):
        plan = TensorizationPlan(cfg.bm, cfg.bn, cfg.bk * iters, cfg)
        on = build_gemm_stream(plan, latency_hiding=True)
        off = build_gemm_stream(plan, latency_hiding=False)
        for op in (Opcode.LDG, Opcode.LDS, Opcode.STS, Opcode.HMMA, Opcode.STG):
            assert on.count(op) == off.count(op)
        # "Hiding never slower" needs compute long enough to hide the
        # prefetch's completion latency under; on degenerate tiny tiles
        # the pipelined order pays the LDG round trip on the critical
        # path that the staggered naive order dodges — physically real,
        # and exactly why the analytic model rejects tiny tiles.
        hmma_cycles = plan.hmma_per_iteration() * TESLA_T4.hmma_issue_cycles
        if hmma_cycles >= 2 * TESLA_T4.ldg_latency_cycles:
            assert schedule(on, TESLA_T4).total_cycles <= schedule(off, TESLA_T4).total_cycles


class TestCodegenInvariants:
    @given(legal_tilings())
    @settings(max_examples=30, deadline=None)
    def test_listing_always_validates(self, cfg):
        regmap = build_register_map(cfg)
        if regmap.context_base + regmap.context_count > 256:
            return  # infeasible register demand: the solver rejects these
        listing = generate_iteration_sass(cfg)
        validate(listing, max_registers=256)
        plan = TensorizationPlan(cfg.bm, cfg.bn, cfg.bk, cfg)
        assert listing.count("HMMA") == plan.hmma_per_iteration(4) // cfg.warps_per_block
