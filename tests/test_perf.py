"""Tests for the hot-path performance layer (repro.perf + scheduler memo).

The layer's contract is strict: every cache and every vectorized path
must be *bit-identical* to the seed implementation it replaces.  The
equivalence tests therefore compare against a seed-faithful reference
(:func:`repro.perf.bench._legacy_gemm`) at the byte level, not with
tolerances.
"""

import os
import pickle
import threading

import numpy as np
import pytest

from repro.emulation.extended import EGEMM3
from repro.emulation.gemm import EmulatedGemm
from repro.emulation.schemes import EGEMM, HALF, MARKIDIS
from repro.gpu.scheduler import clear_schedule_cache, schedule, schedule_cache_stats
from repro.gpu.spec import RTX6000, TESLA_T4
from repro.perf.bench import _legacy_gemm
from repro.perf.parallel import default_jobs, parallel_map
from repro.perf.split_cache import SplitCache
from repro.tensorcore.mma import MmaCounter


def _bits(x):
    return np.ascontiguousarray(x).view(np.uint32)


class TestSplitCache:
    def test_identity_hit_on_frozen_array(self, rng):
        cache = SplitCache()
        gemm = EmulatedGemm(split_cache=cache)
        a = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        a.flags.writeable = False
        b = rng.uniform(-1, 1, (32, 32)).astype(np.float32)
        b.flags.writeable = False
        gemm(a, b)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        gemm(a, b)
        assert cache.stats.hits == 2

    def test_content_hit_on_equal_writeable_arrays(self, rng):
        cache = SplitCache()
        gemm = EmulatedGemm(split_cache=cache)
        a = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
        b = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
        gemm(a, b)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        gemm(a.copy(), b.copy())  # distinct objects, same bytes
        assert cache.stats.hits == 2

    def test_miss_after_inplace_mutation(self, rng):
        cache = SplitCache()
        gemm = EmulatedGemm(split_cache=cache)
        a = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
        b = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
        d0 = gemm(a, b)
        a[0, 0] += 1.0  # in-place mutation must invalidate
        d1 = gemm(a, b)
        assert not np.array_equal(d0, d1)
        assert np.array_equal(d1, EmulatedGemm()(a, b))

    def test_mutation_result_matches_uncached(self, rng):
        """The content key guarantees a mutated operand is re-split."""
        cache = SplitCache()
        cached = EmulatedGemm(split_cache=cache)
        plain = EmulatedGemm()
        a = rng.uniform(-1, 1, (24, 40)).astype(np.float32)
        b = rng.uniform(-1, 1, (40, 24)).astype(np.float32)
        for _ in range(3):
            assert np.array_equal(_bits(cached(a, b)), _bits(plain(a, b)))
            a *= 1.5

    def test_lru_eviction_bound(self, rng):
        cache = SplitCache(maxsize=4)
        gemm = EmulatedGemm(split_cache=cache)
        b = rng.uniform(-1, 1, (8, 8)).astype(np.float32)
        for _ in range(10):
            gemm(rng.uniform(-1, 1, (8, 8)).astype(np.float32), b)
        assert len(cache) <= 4
        assert cache.stats.evictions > 0

    def test_identity_entry_pins_array(self, rng):
        """The id fast path stores a strong reference, so an id can't be
        recycled by the allocator while its cache entry is alive."""
        cache = SplitCache()
        gemm = EmulatedGemm(split_cache=cache)
        for _ in range(5):
            a = rng.uniform(-1, 1, (8, 8)).astype(np.float32)
            a.flags.writeable = False
            d = gemm(a, a)
            assert np.array_equal(_bits(d), _bits(EmulatedGemm()(a, a)))

    def test_pickle_resets_state(self, rng):
        cache = SplitCache(maxsize=7)
        gemm = EmulatedGemm(split_cache=cache)
        a = rng.uniform(-1, 1, (8, 8)).astype(np.float32)
        gemm(a, a)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.maxsize == 7
        assert len(clone) == 0 and clone.stats.lookups == 0


class TestBitEquivalence:
    @pytest.mark.parametrize("scheme", [EGEMM, MARKIDIS, HALF], ids=lambda s: s.name)
    @pytest.mark.parametrize("shape", [(16, 16, 16), (24, 40, 24), (7, 33, 5), (1, 16, 1)])
    def test_run_matches_legacy(self, rng, scheme, shape):
        m, k, n = shape
        a = rng.uniform(-1, 1, (m, k)).astype(np.float32)
        b = rng.uniform(-1, 1, (k, n)).astype(np.float32)
        c = rng.uniform(-1, 1, (m, n)).astype(np.float32)
        got = EmulatedGemm(scheme=scheme)(a, b, c)
        want = _legacy_gemm(a, b, c, scheme=scheme)
        assert np.array_equal(_bits(got), _bits(want))

    @pytest.mark.parametrize("tk", [8, 16, 48, 1000])
    def test_run_matches_legacy_tk(self, rng, tk):
        a = rng.uniform(-1, 1, (20, 100)).astype(np.float32)
        b = rng.uniform(-1, 1, (100, 20)).astype(np.float32)
        got = EmulatedGemm(tk=tk)(a, b)
        assert np.array_equal(_bits(got), _bits(_legacy_gemm(a, b, tk=tk)))

    def test_run_with_cache_matches_legacy(self, rng):
        gemm = EmulatedGemm(split_cache=SplitCache())
        a = rng.uniform(-1, 1, (32, 64)).astype(np.float32)
        b = rng.uniform(-1, 1, (64, 32)).astype(np.float32)
        for _ in range(3):  # second+ runs served from the cache
            assert np.array_equal(_bits(gemm(a, b)), _bits(_legacy_gemm(a, b)))

    def test_three_term_scheme_still_works(self, rng):
        """EGEMM3 is duck-typed; the cached-plan path must support it."""
        a = rng.uniform(-1, 1, (16, 32)).astype(np.float32)
        b = rng.uniform(-1, 1, (32, 16)).astype(np.float32)
        gemm = EmulatedGemm(scheme=EGEMM3, split_cache=SplitCache())
        d0 = gemm(a, b)
        d1 = gemm(a, b)
        assert np.array_equal(_bits(d0), _bits(d1))
        # 9 partial products per chunk
        _, stats = EmulatedGemm(scheme=EGEMM3).run(a, b)
        assert stats.partial_products == stats.k_chunks * 9

    def test_batched_matches_legacy_loop(self, rng):
        a = rng.uniform(-1, 1, (6, 12, 40)).astype(np.float32)
        b = rng.uniform(-1, 1, (6, 40, 12)).astype(np.float32)
        d = EmulatedGemm().batched(a, b)
        want = np.stack([_legacy_gemm(a[i], b[i]) for i in range(6)])
        assert np.array_equal(_bits(d), _bits(want))


class TestBatchedEdgeCases:
    def test_empty_batch(self, rng):
        g = EmulatedGemm()
        d, stats = g.run_batched(
            np.zeros((0, 4, 8), np.float32), np.zeros((0, 8, 4), np.float32)
        )
        assert d.shape == (0, 4, 4)
        assert stats.batch == 0 and stats.mma_calls == 0

    def test_degenerate_2d_inputs(self, rng):
        """ndim == 2 means an empty batch prefix — same bits as run()."""
        g = EmulatedGemm()
        a = rng.uniform(-1, 1, (8, 24)).astype(np.float32)
        b = rng.uniform(-1, 1, (24, 8)).astype(np.float32)
        d = g.batched(a, b)
        assert d.shape == (8, 8)
        assert np.array_equal(_bits(d), _bits(g(a, b)))

    def test_broadcast_c(self, rng):
        g = EmulatedGemm()
        a = rng.uniform(-1, 1, (3, 4, 8)).astype(np.float32)
        b = rng.uniform(-1, 1, (3, 8, 4)).astype(np.float32)
        c = rng.uniform(-1, 1, (4, 4)).astype(np.float32)  # shared across batch
        d = g.batched(a, b, c)
        for i in range(3):
            assert np.array_equal(_bits(d[i]), _bits(g(a[i], b[i], c)))

    def test_broadcast_operand_zero_stride(self, rng):
        """One shared B across the batch (0-stride broadcast view)."""
        g = EmulatedGemm()
        a = rng.uniform(-1, 1, (4, 6, 16)).astype(np.float32)
        b = rng.uniform(-1, 1, (16, 6)).astype(np.float32)
        d = g.batched(a, b[None])  # batch dims (4,) x (1,) -> (4,)
        for i in range(4):
            assert np.array_equal(_bits(d[i]), _bits(g(a[i], b)))

    def test_batched_stats_aggregate(self, rng):
        g = EmulatedGemm()
        a = rng.uniform(-1, 1, (5, 8, 32)).astype(np.float32)
        b = rng.uniform(-1, 1, (5, 32, 8)).astype(np.float32)
        _, stats = g.run_batched(a, b)
        _, elem = EmulatedGemm().run(a[0], b[0])
        assert stats.batch == 5
        assert stats.mma_calls == 5 * elem.mma_calls
        assert stats.k_chunks == 5 * elem.k_chunks
        assert stats.partial_products == 5 * elem.partial_products
        assert stats.flops == 5 * elem.flops

    def test_batched_counter_counts_once_per_element(self, rng):
        g = EmulatedGemm()
        a = rng.uniform(-1, 1, (3, 16, 16)).astype(np.float32)
        b = rng.uniform(-1, 1, (3, 16, 16)).astype(np.float32)
        g.batched(a, b)
        # one 16x16x16 tile x 4-term scheme x 3 elements
        assert g.counter.calls == 3 * 4


class TestScheduleMemo:
    def setup_method(self):
        clear_schedule_cache()

    def teardown_method(self):
        clear_schedule_cache()

    def _stream(self):
        from repro.kernels.egemm import EgemmTcKernel

        kernel = EgemmTcKernel()
        cfg = kernel.tiling_for(TESLA_T4)
        from repro.tensorize.kernel import build_gemm_stream
        from repro.tensorize.plan import TensorizationPlan

        plan = TensorizationPlan(1024, 1024, 1024, cfg)
        return build_gemm_stream(plan, scheme_terms=4)

    def test_hit_on_repeat(self):
        stream = self._stream()
        r0 = schedule(stream, TESLA_T4)
        stats = schedule_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        r1 = schedule(stream, TESLA_T4)
        stats = schedule_cache_stats()
        assert stats["hits"] == 1
        assert r0.total_cycles == r1.total_cycles
        assert r0.unit_busy == r1.unit_busy

    def test_memoize_false_bypasses(self):
        stream = self._stream()
        schedule(stream, TESLA_T4, memoize=False)
        assert schedule_cache_stats()["misses"] == 0

    def test_cached_result_isolation(self):
        stream = self._stream()
        r0 = schedule(stream, TESLA_T4)
        r0.unit_busy.clear()
        r0.group_complete.clear()
        r1 = schedule(stream, TESLA_T4)
        assert r1.unit_busy and r1.group_complete

    def test_distinct_specs_distinct_entries(self):
        stream = self._stream()
        schedule(stream, TESLA_T4)
        schedule(stream, RTX6000)
        stats = schedule_cache_stats()
        assert stats["misses"] == 2 and stats["size"] == 2

    def test_sweep_hit_rate_above_90_percent(self):
        """The bench's acceptance bar: 12 reps of a Figure-8-shaped sweep."""
        from repro.kernels.egemm import EgemmTcKernel

        kernel = EgemmTcKernel()
        for _ in range(12):
            for n in (256, 512, 1024):
                kernel.time(n, n, n, TESLA_T4)
        assert schedule_cache_stats()["hit_rate"] > 0.90


class TestParallelMap:
    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        assert parallel_map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() >= 1
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert default_jobs() == 1

    def test_unpicklable_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        captured = []
        assert parallel_map(lambda x: captured.append(x) or -x, [1, 2, 3]) == [-1, -2, -3]

    def test_order_preserved(self):
        items = list(range(20))
        assert parallel_map(str, items, jobs=1) == [str(i) for i in items]


class TestMmaCounterThreadSafety:
    def test_concurrent_add_is_exact(self):
        counter = MmaCounter()
        per_thread, threads = 2000, 8

        def work():
            for _ in range(per_thread):
                counter.add(1, 2)

        ts = [threading.Thread(target=work) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert counter.calls == per_thread * threads
        assert counter.flops == 2 * per_thread * threads

    def test_pickle_arrives_reset(self):
        counter = MmaCounter()
        counter.add(5, 10)
        clone = pickle.loads(pickle.dumps(counter))
        assert clone.calls == 0 and clone.flops == 0
        clone.add(1, 2)  # fresh lock works
        assert clone.calls == 1


class TestAppsCaching:
    def test_power_iteration_splits_matrix_once(self, rng):
        from repro.apps.power_iteration import PowerIteration

        a = rng.normal(0, 1, (48, 48)).astype(np.float32)
        a = ((a + a.T) / 2).astype(np.float32)
        model = PowerIteration(max_iter=10, tol=0).fit(a)
        cache = model.kernel.split_cache
        # Two GEMMs per iteration; the matrix hits from iteration 1 on.
        assert cache.stats.hits >= 2 * model.n_iter_ - 1
        assert a.flags.writeable  # caller's array untouched

    def test_knn_reference_split_reused_across_queries(self, rng):
        from repro.apps.knn import KnnSearch

        ref = rng.normal(0, 1, (64, 16)).astype(np.float32)
        knn = KnnSearch(k=2).fit(ref)
        q = rng.normal(0, 1, (8, 16)).astype(np.float32)
        d0, i0 = knn.kneighbors(q)
        hits_before = knn.kernel.split_cache.stats.hits
        d1, i1 = knn.kneighbors(q)
        assert knn.kernel.split_cache.stats.hits > hits_before
        assert np.array_equal(d0, d1) and np.array_equal(i0, i1)

    def test_kmeans_data_matrix_cached(self, rng):
        from repro.apps.kmeans import KMeans

        x = rng.normal(0, 1, (120, 8)).astype(np.float32)
        model = KMeans(n_clusters=3, max_iter=6).fit(x)
        cache = model.kernel.split_cache
        assert cache.stats.hits >= model.n_iter_ - 1
        assert x.flags.writeable

    def test_kernels_expose_split_cache(self):
        from repro.kernels.cublas import CublasTcEmulation, CublasTcHalf
        from repro.kernels.egemm import EgemmTcKernel
        from repro.kernels.markidis import MarkidisKernel

        for kernel in (EgemmTcKernel(), MarkidisKernel(), CublasTcHalf(), CublasTcEmulation()):
            assert isinstance(kernel.split_cache, SplitCache)

    def test_kernel_pickles_for_process_pools(self):
        from repro.kernels.egemm import EgemmTcKernel

        kernel = EgemmTcKernel()
        a = np.ones((8, 8), np.float32)
        kernel.compute(a, a)
        clone = pickle.loads(pickle.dumps(kernel))
        assert np.array_equal(clone.compute(a, a), kernel.compute(a, a))
