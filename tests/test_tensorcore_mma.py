"""Tests for the simulated Tensor Core compute primitive."""

import numpy as np
import pytest

from repro.fp.bits import mantissa_bits_agreement
from repro.tensorcore.mma import (
    HMMA_1688,
    M16N16K16,
    InternalPrecision,
    MmaCounter,
    MmaShape,
    mma,
)


def _half_tile(rng, m, k):
    return rng.uniform(0, 1, (m, k)).astype(np.float16)


class TestValidation:
    def test_rejects_fp32_inputs(self, rng):
        a = rng.uniform(0, 1, (16, 16)).astype(np.float32)
        b = _half_tile(rng, 16, 16)
        with pytest.raises(TypeError, match="float16"):
            mma(a, b)

    def test_rejects_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="mismatch"):
            mma(_half_tile(rng, 16, 8), _half_tile(rng, 16, 16))

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            mma(np.zeros(16, dtype=np.float16), _half_tile(rng, 16, 16))

    def test_enforces_primitive_shape(self, rng):
        a, b = _half_tile(rng, 16, 8), _half_tile(rng, 8, 16)
        with pytest.raises(ValueError, match="primitive shape"):
            mma(a, b, shape=M16N16K16)

    def test_accepts_matching_primitive_shape(self, rng):
        a, b = _half_tile(rng, 16, 8), _half_tile(rng, 8, 8)
        out = mma(a, b, shape=HMMA_1688)
        assert out.shape == (16, 8)

    def test_rejects_bad_accumulator_shape(self, rng):
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        with pytest.raises(ValueError, match="accumulator"):
            mma(a, b, np.zeros((8, 8), dtype=np.float32))

    def test_rejects_fp64_accumulator(self, rng):
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        with pytest.raises(TypeError, match="accumulator"):
            mma(a, b, np.zeros((16, 16), dtype=np.float64))


class TestArithmeticModels:
    def test_default_is_tensor_core_fp32_output(self, rng):
        out = mma(_half_tile(rng, 16, 16), _half_tile(rng, 16, 16))
        assert out.dtype == np.float32

    def test_exact_model_returns_float64(self, rng):
        out = mma(
            _half_tile(rng, 16, 16),
            _half_tile(rng, 16, 16),
            precision=InternalPrecision.EXACT,
        )
        assert out.dtype == np.float64

    def test_tensor_core_close_to_exact(self, rng):
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        tc = mma(a, b, precision=InternalPrecision.TENSOR_CORE)
        exact = mma(a, b, precision=InternalPrecision.EXACT)
        # One fp32 rounding only.
        assert np.max(np.abs(tc - exact)) <= np.max(np.abs(exact)) * 2.0**-23

    def test_half_model_much_worse_than_tc(self, rng):
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        exact = mma(a, b, precision=InternalPrecision.EXACT)
        tc_err = np.max(np.abs(mma(a, b) - exact))
        half_err = np.max(np.abs(mma(a, b, precision=InternalPrecision.HALF) - exact))
        assert half_err > 100 * max(tc_err, 1e-12)

    def test_float_model_agrees_with_tc_to_21_bits(self, rng):
        """The §3.2 profiling claim at the primitive level."""
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        tc = mma(a, b, precision=InternalPrecision.TENSOR_CORE)
        fl = mma(a, b, precision=InternalPrecision.FLOAT)
        assert int(mantissa_bits_agreement(tc, fl).min()) >= 21

    def test_accumulates_into_c(self, rng):
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        c = rng.uniform(0, 1, (16, 16)).astype(np.float32)
        with_c = mma(a, b, c)
        without_c = mma(a, b)
        assert np.allclose(with_c - without_c, c, atol=1e-5)

    def test_half_precision_c_accepted(self, rng):
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        c = rng.uniform(0, 1, (16, 16)).astype(np.float16)
        out = mma(a, b, c)
        assert out.dtype == np.float32

    def test_zero_c_default(self, rng):
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        assert np.array_equal(mma(a, b), mma(a, b, np.zeros((16, 16), dtype=np.float32)))

    def test_deterministic(self, rng):
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        assert np.array_equal(mma(a, b), mma(a, b))


class TestShapesAndCounter:
    def test_mma_shape_flops(self):
        assert M16N16K16.flops == 2 * 16 * 16 * 16
        assert HMMA_1688.flops == 2 * 16 * 8 * 8

    def test_counter_records(self, rng):
        counter = MmaCounter()
        a, b = _half_tile(rng, 16, 16), _half_tile(rng, 16, 16)
        mma(a, b, counter=counter)
        mma(a, b, counter=counter)
        assert counter.calls == 2
        assert counter.flops == 2 * M16N16K16.flops

    def test_custom_shape(self):
        s = MmaShape(32, 8, 16)
        assert s.flops == 2 * 32 * 8 * 16
        assert "m32n8k16" in str(s)
