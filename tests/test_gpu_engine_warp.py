"""Tests for the execution engine (waves/DRAM) and the warp model (§4)."""

import pytest

from repro.gpu.engine import LAUNCH_OVERHEAD_S, KernelLaunch, execute, roofline_seconds
from repro.gpu.isa import InstructionStream, Opcode
from repro.gpu.occupancy import BlockResources
from repro.gpu.spec import TESLA_T4
from repro.gpu.warp import (
    COMPUTE_LAYOUT,
    ThreadLayout,
    compute_sharing,
    loading_assignment,
    thread_slices,
)


def _compute_stream(hmma=512):
    s = InstructionStream()
    s.emit(Opcode.HMMA, hmma)
    return s


def _launch(blocks, dram_bytes=0.0, hmma=512, flops=1e9):
    return KernelLaunch(
        name="test",
        stream=_compute_stream(hmma),
        grid_blocks=blocks,
        resources=BlockResources(threads=256, shared_mem_bytes=32 * 1024, registers_per_thread=128),
        dram_bytes_per_block=dram_bytes,
        useful_flops=flops,
    )


class TestEngine:
    def test_single_block(self):
        t = execute(_launch(1), TESLA_T4)
        assert t.waves == 1
        assert t.seconds > LAUNCH_OVERHEAD_S

    def test_wave_quantization(self):
        """One more block than the wave capacity doubles the waves."""
        slots = TESLA_T4.num_sms  # blocks_per_sm limited by shared mem: 2
        t1 = execute(_launch(slots), TESLA_T4)
        t2 = execute(_launch(slots * t1.occupancy.blocks_per_sm), TESLA_T4)
        t3 = execute(_launch(slots * t1.occupancy.blocks_per_sm + 1), TESLA_T4)
        assert t3.waves == t2.waves + 1
        assert t3.cycles > t2.cycles

    def test_throughput_scales_with_blocks(self):
        """2x the blocks ~ 2x the useful work in ~2x the time => same TFLOPS
        once full; the engine must not be superlinear."""
        base = execute(_launch(400, flops=1e9), TESLA_T4)
        double = execute(_launch(800, flops=2e9), TESLA_T4)
        assert double.cycles == pytest.approx(2 * base.cycles, rel=0.05)

    def test_dram_bound_wave_detection(self):
        fast = execute(_launch(80, dram_bytes=0.0), TESLA_T4)
        slow = execute(_launch(80, dram_bytes=100e6), TESLA_T4)
        assert fast.dram_bound_waves == 0
        assert slow.dram_bound_waves > 0
        assert slow.cycles > fast.cycles

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            execute(_launch(0), TESLA_T4)

    def test_tflops_eq9(self):
        t = execute(_launch(40, flops=2.0 * 1024**3), TESLA_T4)
        assert t.tflops == pytest.approx(t.useful_flops / t.seconds / 1e12)

    def test_combined_timings(self):
        a = execute(_launch(40), TESLA_T4)
        b = execute(_launch(40), TESLA_T4)
        c = a.combined(b, name="two")
        assert c.seconds == pytest.approx(a.seconds + b.seconds)
        assert c.useful_flops == a.useful_flops + b.useful_flops
        assert c.name == "two"


class TestRoofline:
    def test_compute_bound_regime(self):
        s = roofline_seconds(1e12, 1e6, TESLA_T4, peak_tflops=8.0, efficiency=0.5)
        assert s == pytest.approx(1e12 / 4e12 + LAUNCH_OVERHEAD_S)

    def test_memory_bound_regime(self):
        s = roofline_seconds(1e9, 320e9, TESLA_T4, peak_tflops=8.0)
        assert s == pytest.approx(1.0 + LAUNCH_OVERHEAD_S)

    def test_occupancy_ramp(self):
        """Fewer blocks than slots lowers effective throughput."""
        full = roofline_seconds(1e12, 0, TESLA_T4, 8.0, grid_blocks=80, blocks_per_sm=2)
        partial = roofline_seconds(1e12, 0, TESLA_T4, 8.0, grid_blocks=40, blocks_per_sm=2)
        assert partial > full


class TestThreadLayouts:
    def test_compute_layout_is_32x1(self):
        assert (COMPUTE_LAYOUT.x, COMPUTE_LAYOUT.y) == (32, 1)

    def test_invalid_layouts_rejected(self):
        with pytest.raises(ValueError):
            ThreadLayout(16, 4)  # 64 threads
        with pytest.raises(ValueError):
            ThreadLayout(0, 32)

    def test_slices_cover_without_overlap(self):
        """§4: the 2-D loading layout assigns non-overlapping work."""
        import numpy as np

        for layout in (ThreadLayout(16, 2), ThreadLayout(8, 4), ThreadLayout(32, 1)):
            cover = np.zeros((16, 32), dtype=int)
            slices = thread_slices(16, 32, layout)
            assert len(slices) == 32
            for rs, cs in slices:
                cover[rs, cs] += 1
            assert (cover == 1).all()

    def test_slices_reject_nondivisible(self):
        with pytest.raises(ValueError):
            thread_slices(10, 16, ThreadLayout(8, 4))  # 10 rows over y=4


class TestWarpCollaboration:
    def test_loading_covers_all_fragments(self):
        """Figure 5 loading phase: every fragment staged exactly once."""
        assignment = loading_assignment(num_fragments=8, num_warps=4)
        staged = sorted(f for frags in assignment.values() for f in frags)
        assert staged == list(range(8))
        counts = [len(v) for v in assignment.values()]
        assert max(counts) - min(counts) <= 1  # balanced

    def test_loading_rejects_zero_warps(self):
        with pytest.raises(ValueError):
            loading_assignment(4, 0)

    def test_compute_sharing_cross_warp_reuse(self):
        """Figure 5 computation phase: each A panel feeds a warp row."""
        sharing = compute_sharing(2, 4)
        assert sharing["A"][0] == [0, 1, 2, 3]
        assert sharing["A"][1] == [4, 5, 6, 7]
        assert sharing["B"][0] == [0, 4]
        # Every warp appears in exactly one A row and one B column.
        a_warps = sorted(w for ws in sharing["A"].values() for w in ws)
        assert a_warps == list(range(8))

    def test_compute_sharing_validation(self):
        with pytest.raises(ValueError):
            compute_sharing(0, 4)
