"""Tests for the Dekker/Knuth error-free transformations and the
16-instruction Dekker emulation baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emulation.gemm import reference_exact, reference_single
from repro.fp.error import max_error
from repro.splits.dekker import DekkerSplit, DekkerStats, dekker_dot, dekker_gemm
from repro.splits.eft import (
    DEKKER_EMULATED_FMA_OPS,
    fast_two_sum,
    two_prod,
    two_sum,
    veltkamp_split,
)

moderate = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestTwoSum:
    @given(moderate, moderate)
    @settings(max_examples=300)
    def test_exactness_in_float64(self, a, b):
        s, e = two_sum(np.float64(a), np.float64(b))
        # a + b == s + e exactly (both are f64; the identity is exact).
        assert float(s) == float(np.float64(a) + np.float64(b))
        # The error term recovers what the rounded sum lost.
        import decimal

        exact = decimal.Decimal(float(a)) + decimal.Decimal(float(b))
        recovered = decimal.Decimal(float(s)) + decimal.Decimal(float(e))
        assert exact == recovered

    def test_catastrophic_cancellation_recovered(self):
        a, b = np.float64(1e16), np.float64(1.0)
        s, e = two_sum(a, b)
        assert float(s) == 1e16
        assert float(e) == 1.0

    def test_fp16_working_precision(self):
        a, b = np.float16(1024.0), np.float16(0.5)
        s, e = two_sum(a, b, dtype=np.float16)
        assert s.dtype == np.float16
        assert float(s) + float(e) == 1024.5


class TestFastTwoSum:
    @given(moderate, moderate)
    @settings(max_examples=300)
    def test_exact_when_ordered(self, a, b):
        hi, lo = (a, b) if abs(a) >= abs(b) else (b, a)
        s, e = fast_two_sum(np.float64(hi), np.float64(lo))
        import decimal

        assert decimal.Decimal(float(hi)) + decimal.Decimal(float(lo)) == decimal.Decimal(
            float(s)
        ) + decimal.Decimal(float(e))


class TestVeltkampSplit:
    @given(st.floats(min_value=-1e10, max_value=1e10, allow_nan=False))
    @settings(max_examples=300)
    def test_exact_decomposition(self, a):
        hi, lo = veltkamp_split(np.float64(a))
        assert float(hi) + float(lo) == float(np.float64(a))

    def test_halves_fit_in_half_width(self):
        hi, lo = veltkamp_split(np.float64(np.pi))
        # Each part fits 26 significand bits: squaring is exact in f64.
        assert float(hi) * float(hi) == float(np.float64(float(hi)) * np.float64(float(hi)))


class TestTwoProd:
    @given(
        # Dekker's exactness precondition excludes products whose error
        # term would be subnormal; keep magnitudes in the normal range.
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False).filter(
            lambda v: v == 0 or abs(v) > 1e-100
        ),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False).filter(
            lambda v: v == 0 or abs(v) > 1e-100
        ),
    )
    @settings(max_examples=300)
    def test_exact_product_in_float64(self, a, b):
        p, e = two_prod(np.float64(a), np.float64(b))
        import decimal

        exact = decimal.Decimal(float(a)) * decimal.Decimal(float(b))
        assert decimal.Decimal(float(p)) + decimal.Decimal(float(e)) == exact

    def test_instruction_count_constant(self):
        assert DEKKER_EMULATED_FMA_OPS == 16


class TestDekkerEmulation:
    def test_split_reuses_round_split(self, rng):
        x = rng.uniform(-1, 1, 100).astype(np.float32)
        pair = DekkerSplit().split(x)
        assert np.array_equal(pair.hi, x.astype(np.float16))

    def test_dot_beats_plain_half(self, rng):
        a = rng.uniform(0, 1, (8, 32)).astype(np.float32)
        b = rng.uniform(0, 1, (8, 32)).astype(np.float32)
        exact = np.einsum("ij,ij->i", a.astype(np.float64), b.astype(np.float64))
        dek = dekker_dot(a, b)
        half = np.einsum(
            "ij,ij->i", a.astype(np.float16).astype(np.float32), b.astype(np.float16).astype(np.float32)
        )
        assert np.max(np.abs(dek - exact)) < np.max(np.abs(half - exact))

    def test_gemm_matches_reference_within_extended_precision(self, rng):
        a = rng.uniform(-1, 1, (8, 16)).astype(np.float32)
        b = rng.uniform(-1, 1, (16, 8)).astype(np.float32)
        d = dekker_gemm(a, b)
        # Half-combined Dekker reaches ~20 bits; generous tolerance.
        assert max_error(d, reference_exact(a, b)) < 1e-2
        assert max_error(d, reference_single(a, b)) < 1e-2

    def test_gemm_adds_c(self, rng):
        a = rng.uniform(-1, 1, (4, 8)).astype(np.float32)
        b = rng.uniform(-1, 1, (8, 4)).astype(np.float32)
        c = rng.uniform(-1, 1, (4, 4)).astype(np.float32)
        assert max_error(dekker_gemm(a, b, c), reference_exact(a, b, c)) < 1e-2

    def test_stats_count_16x_overhead(self, rng):
        a = rng.uniform(-1, 1, (4, 8)).astype(np.float32)
        b = rng.uniform(-1, 1, (8, 4)).astype(np.float32)
        stats = DekkerStats()
        dekker_gemm(a, b, stats=stats)
        assert stats.emulated_fmas == 4 * 4 * 8
        assert stats.half_instructions == 16 * stats.emulated_fmas
        assert stats.overhead_factor == 16

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            dekker_gemm(np.zeros((2, 3), np.float32), np.zeros((4, 2), np.float32))
