"""Property-based tests on the library's core invariants (hypothesis).

These complement the per-module unit tests with randomized invariants
that must hold across the whole input space:

* split algebra (reconstruction bounds, ordering, exactness conditions),
* emulated GEMM algebra (linearity-in-C, scaling, transpose symmetry up
  to accumulation order, error bounds),
* the agreement metric's metric-like properties,
* scheduler monotonicity (more work never takes less time),
* analytic-model monotonicity (bigger tiles never lower the objective).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.emulation.gemm import EmulatedGemm, reference_exact
from repro.emulation.schemes import EGEMM
from repro.fp.bits import mantissa_bits_agreement, ulp_distance
from repro.fp.error import max_error
from repro.gpu.isa import InstructionStream, Opcode
from repro.gpu.scheduler import schedule
from repro.gpu.spec import TESLA_T4
from repro.model.resources import compute_intensity
from repro.splits.round import RoundSplit
from repro.splits.truncate import TruncateSplit

# strategies -----------------------------------------------------------------

unit_floats = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False).filter(
    lambda v: v == 0 or abs(v) > 1e-6
)
seeds = st.integers(0, 2**31 - 1)
dims = st.integers(1, 24)


def _matrix(seed: int, m: int, k: int) -> np.ndarray:
    return np.random.default_rng(seed).uniform(-1, 1, (m, k)).astype(np.float32)


class TestSplitProperties:
    @given(st.lists(unit_floats, min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_round_split_reconstruction_bound(self, values):
        x = np.array(values, dtype=np.float32)
        err = RoundSplit().max_reconstruction_error(x)
        # residual <= 0.5 ulp16 of the residual's own scale: for |x| <= 1
        # that is at most 2^-21 absolute.
        assert err <= 2.0**-21

    @given(st.lists(unit_floats, min_size=1, max_size=64))
    @settings(max_examples=100)
    def test_splits_exact_on_fp16_grid(self, values):
        """Any fp16-representable input splits with zero residual."""
        x = np.array(values, dtype=np.float32).astype(np.float16).astype(np.float32)
        assert RoundSplit().max_reconstruction_error(x) == 0.0
        assert TruncateSplit().max_reconstruction_error(x) == 0.0

    @given(unit_floats)
    @settings(max_examples=200)
    def test_split_negation_symmetry(self, value):
        """round-split(-x) == -round-split(x) (RN-even is symmetric)."""
        x = np.array([value], dtype=np.float32)
        p = RoundSplit().split(x)
        n = RoundSplit().split(-x)
        assert np.array_equal(n.hi, -p.hi)
        assert np.array_equal(n.lo, -p.lo)


class TestGemmProperties:
    @given(seeds, dims, dims, dims)
    @settings(max_examples=25, deadline=None)
    def test_c_linearity(self, seed, m, n, k):
        """egemm(a, b, c) - egemm(a, b, 0) ~= c (C passes through fp32)."""
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, (m, k)).astype(np.float32)
        b = rng.uniform(-1, 1, (k, n)).astype(np.float32)
        c = rng.uniform(-1, 1, (m, n)).astype(np.float32)
        g = EmulatedGemm(scheme=EGEMM)
        delta = g(a, b, c) - g(a, b)
        assert np.max(np.abs(delta - c)) <= 1e-4

    @given(seeds, dims, dims)
    @settings(max_examples=25, deadline=None)
    def test_zero_operand(self, seed, m, k):
        a = _matrix(seed, m, k)
        z = np.zeros((k, 3), dtype=np.float32)
        assert np.all(EmulatedGemm()(a, z) == 0)

    @given(seeds, st.integers(1, 12), st.integers(1, 12), st.integers(1, 24))
    @settings(max_examples=25, deadline=None)
    def test_power_of_two_scaling(self, seed, m, n, k):
        """Scaling A by 4 scales D by ~4.

        Power-of-two scaling commutes with every *normal-range* rounding
        step; it does NOT commute exactly when a low split term lands in
        fp16's subnormal range (absolute 2^-24 quantum), so the property
        is approximate with a subnormal-sized tolerance — a faithful
        artifact of real fp16 hardware, not a bug.
        """
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, (m, k)).astype(np.float32)
        b = rng.uniform(-1, 1, (k, n)).astype(np.float32)
        g = EmulatedGemm()
        lhs = g(4.0 * a, b)
        rhs = 4.0 * g(a, b)
        assert np.max(np.abs(lhs - rhs)) <= 4 * max(k, 4) * 2.0**-23

    @given(seeds, st.integers(1, 10), st.integers(1, 10), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_error_bound_vs_exact(self, seed, m, n, k):
        """|D - exact| <= k * 2^-20 for unit inputs — the extended-
        precision guarantee with generous slack for accumulation."""
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, (m, k)).astype(np.float32)
        b = rng.uniform(-1, 1, (k, n)).astype(np.float32)
        d = EmulatedGemm()(a, b)
        assert max_error(d, reference_exact(a, b)) <= max(k, 4) * 2.0**-20


class TestAgreementMetric:
    @given(unit_floats, unit_floats)
    @settings(max_examples=200)
    def test_symmetry(self, a, b):
        x, y = np.float32(a), np.float32(b)
        assert int(mantissa_bits_agreement(x, y)) == int(mantissa_bits_agreement(y, x))

    @given(unit_floats)
    @settings(max_examples=100)
    def test_identity(self, a):
        x = np.float32(a)
        assert int(mantissa_bits_agreement(x, x)) == 24
        assert int(ulp_distance(x, x)) == 0

    @given(unit_floats, unit_floats, unit_floats)
    @settings(max_examples=150)
    def test_ulp_triangle_inequality(self, a, b, c):
        x, y, z = np.float32(a), np.float32(b), np.float32(c)
        assert int(ulp_distance(x, z)) <= int(ulp_distance(x, y)) + int(ulp_distance(y, z))


class TestSchedulerMonotonicity:
    @given(st.integers(1, 200), st.integers(0, 200))
    @settings(max_examples=50, deadline=None)
    def test_more_instructions_never_faster(self, base, extra):
        def total(n):
            s = InstructionStream()
            g = s.emit(Opcode.LDS, n)
            s.emit(Opcode.HMMA, n, depends_on=(g,))
            return schedule(s, TESLA_T4).total_cycles

        assert total(base + extra) >= total(base)

    @given(st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_dependency_never_faster_than_parallel(self, n):
        dep = InstructionStream()
        g = dep.emit(Opcode.LDG, n)
        dep.emit(Opcode.HMMA, n, depends_on=(g,))
        par = InstructionStream()
        par.emit(Opcode.LDG, n)
        par.emit(Opcode.HMMA, n)
        assert schedule(dep, TESLA_T4).total_cycles >= schedule(par, TESLA_T4).total_cycles


class TestModelProperties:
    @given(st.integers(16, 512), st.integers(16, 512), st.integers(1, 4))
    @settings(max_examples=100)
    def test_intensity_monotone_in_block_size(self, bm, bn, factor):
        """Growing a block dimension never lowers Eq. 4's objective."""
        assert compute_intensity(bm * factor, bn) >= compute_intensity(bm, bn)

    @given(st.integers(16, 512))
    @settings(max_examples=50)
    def test_square_blocks_maximize_intensity(self, s):
        """For a fixed area, the square block maximizes Eq. 4."""
        area = s * s
        for skew in (2, 4, 8):
            if s % skew == 0:
                assert compute_intensity(s, s) >= compute_intensity(s * skew, s // skew)
