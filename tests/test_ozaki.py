"""Tests for the Ozaki-scheme int8 emulation (the ozIMMU extension)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.emulation.gemm import EmulatedGemm, reference_exact
from repro.fp.error import max_error
from repro.splits.ozaki import ozaki_gemm, ozaki_slice
from repro.tensorcore.imma import IMMA_MAX_K, imma


class TestImma:
    def test_exactness(self, rng):
        a = rng.integers(-127, 128, (8, 16)).astype(np.int8)
        b = rng.integers(-127, 128, (16, 8)).astype(np.int8)
        assert np.array_equal(imma(a, b), a.astype(np.int64) @ b.astype(np.int64))

    def test_accumulator(self, rng):
        a = rng.integers(-10, 10, (4, 4)).astype(np.int8)
        b = rng.integers(-10, 10, (4, 4)).astype(np.int8)
        c = rng.integers(-100, 100, (4, 4)).astype(np.int32)
        assert np.array_equal(imma(a, b, c) - imma(a, b), c)

    def test_dtype_enforced(self, rng):
        with pytest.raises(TypeError):
            imma(np.zeros((4, 4), np.int16), np.zeros((4, 4), np.int8))
        with pytest.raises(TypeError):
            imma(
                np.zeros((4, 4), np.int8),
                np.zeros((4, 4), np.int8),
                np.zeros((4, 4), np.int64),
            )

    def test_k_range_guard(self):
        assert IMMA_MAX_K == (2**31 - 1) // (127 * 127)
        with pytest.raises(ValueError, match="exact range"):
            imma(
                np.zeros((1, IMMA_MAX_K + 1), np.int8),
                np.zeros((IMMA_MAX_K + 1, 1), np.int8),
            )

    def test_overflow_via_accumulator(self):
        a = np.full((1, 4), 127, np.int8)
        b = np.full((4, 1), 127, np.int8)
        c = np.full((1, 1), np.iinfo(np.int32).max - 10, np.int32)
        with pytest.raises(OverflowError):
            imma(a, b, c)


class TestOzakiSlice:
    def test_reconstruction_improves_with_slices(self, rng):
        x = rng.uniform(-1, 1, (32, 32)).astype(np.float64)
        errs = [
            np.max(np.abs(ozaki_slice(x, slices=s).reconstruct() - x)) for s in (1, 2, 3, 4)
        ]
        assert errs == sorted(errs, reverse=True)
        assert errs[3] < 1e-7

    def test_digits_never_clip(self, rng):
        """The 7-bit digit planes stay within [-64, 64] by construction."""
        x = rng.uniform(-100, 100, (16, 16)).astype(np.float64)
        sl = ozaki_slice(x, slices=4)
        assert np.all(np.abs(sl.digits.astype(np.int64)) <= 64)

    def test_per_row_exponents_handle_scale_spread(self, rng):
        x = rng.uniform(0.5, 1.0, (4, 8)).astype(np.float64)
        x[0] *= 1e6
        x[2] *= 1e-6
        sl = ozaki_slice(x, slices=3)
        rel = np.abs(sl.reconstruct() - x) / np.abs(x)
        assert rel.max() < 2.0**-18

    def test_axis0_transposes_exponents(self, rng):
        x = rng.uniform(-1, 1, (4, 6)).astype(np.float64)
        sl = ozaki_slice(x, slices=2, axis=0)
        assert sl.exponents.shape == (6,)  # per column
        assert sl.digits.shape == (2, 4, 6)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ozaki_slice(np.zeros((2, 2)), slices=0)
        with pytest.raises(ValueError):
            ozaki_slice(np.zeros(4), slices=2)
        with pytest.raises(ValueError):
            ozaki_slice(np.zeros((2, 2)), slices=2, axis=2)

    def test_zero_rows(self):
        x = np.zeros((3, 5))
        sl = ozaki_slice(x, slices=2)
        assert np.all(sl.digits == 0)
        assert np.all(sl.reconstruct() == 0)


class TestOzakiGemm:
    def test_precision_ladder(self, rng):
        """Each extra slice tightens the result; 4 slices reach the fp32
        input-exactness floor (the capability the fp16 scheme's subnormal
        range denies it — see repro.splits.three_term)."""
        n = 96
        a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        b = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        exact = reference_exact(a, b)
        errs = {s: max_error(ozaki_gemm(a, b, slices=s), exact) for s in (2, 3, 4)}
        assert errs[2] > errs[3] > errs[4]
        assert errs[4] < 1e-6

    def test_three_slices_in_round_split_class(self, rng):
        n = 96
        a = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        b = rng.uniform(-1, 1, (n, n)).astype(np.float32)
        exact = reference_exact(a, b)
        ozaki3 = max_error(ozaki_gemm(a, b, slices=3), exact)
        egemm = max_error(EmulatedGemm()(a, b), exact)
        assert ozaki3 < 20 * egemm  # same class

    def test_handles_row_scale_spread(self, rng):
        """The capability EGEMM-TC lacks: operands far outside fp16 range."""
        a = rng.uniform(-1, 1, (16, 32)).astype(np.float32)
        a[0] *= 1e6
        b = rng.uniform(-1, 1, (32, 16)).astype(np.float32)
        exact = reference_exact(a, b)
        err = max_error(ozaki_gemm(a, b, slices=4), exact)
        assert err / np.abs(exact).max() < 1e-6

    def test_c_accumulation(self, rng):
        a = rng.uniform(-1, 1, (8, 16)).astype(np.float32)
        b = rng.uniform(-1, 1, (16, 8)).astype(np.float32)
        c = rng.uniform(-1, 1, (8, 8)).astype(np.float32)
        assert max_error(ozaki_gemm(a, b, c, slices=4), reference_exact(a, b, c)) < 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            ozaki_gemm(np.zeros((2, 3), np.float32), np.zeros((4, 2), np.float32))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_matrices_bounded_error(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, (8, 12)).astype(np.float32)
        b = rng.uniform(-1, 1, (12, 8)).astype(np.float32)
        err = max_error(ozaki_gemm(a, b, slices=3), reference_exact(a, b))
        assert err < 1e-4


class TestOzakiKernel:
    def test_registry_and_functional(self, rng):
        from repro.emulation.gemm import reference_exact
        from repro.kernels import get_kernel

        k = get_kernel("ozaki-int8")
        a = rng.uniform(-1, 1, (16, 24)).astype(np.float32)
        b = rng.uniform(-1, 1, (24, 16)).astype(np.float32)
        assert max_error(k.compute(a, b), reference_exact(a, b)) < 1e-4

    def test_throughput_story_on_turing(self):
        """At matched (round-split-class) precision, EGEMM-TC's 4 fused
        fp16 calls beat Ozaki's 9 int8 calls on Turing-class hardware —
        consistent with ozIMMU only overtaking on later int8-heavy GPUs."""
        from repro.kernels import EgemmTcKernel, OzakiKernel

        n = 8192
        egemm = EgemmTcKernel().tflops(n, n, n)
        ozaki3 = OzakiKernel(slices=3).tflops(n, n, n)
        ozaki2 = OzakiKernel(slices=2).tflops(n, n, n)
        assert egemm > ozaki3
        assert ozaki2 > ozaki3 > OzakiKernel(slices=4).tflops(n, n, n)

    def test_precision_throughput_tradeoff_monotone(self):
        from repro.kernels import OzakiKernel

        tflops = [OzakiKernel(slices=s).tflops(4096, 4096, 4096) for s in (2, 3, 4)]
        assert tflops == sorted(tflops, reverse=True)
