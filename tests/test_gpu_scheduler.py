"""Tests for the dual-pipeline scheduler — the Figure 6 timing semantics."""

import pytest

from repro.gpu.isa import ExecUnit, InstructionStream, Opcode
from repro.gpu.scheduler import schedule
from repro.gpu.spec import TESLA_T4


def _stream(*emits):
    s = InstructionStream()
    for args in emits:
        s.emit(*args)
    return s


class TestBasics:
    def test_empty_stream(self):
        result = schedule(InstructionStream(), TESLA_T4)
        assert result.total_cycles == 0.0

    def test_single_group(self):
        s = _stream((Opcode.HMMA, 10))
        result = schedule(s, TESLA_T4)
        expected = 10 * TESLA_T4.hmma_issue_cycles + TESLA_T4.hmma_latency_cycles
        assert result.total_cycles == pytest.approx(expected)

    def test_same_unit_serializes(self):
        s = _stream((Opcode.LDS, 10), (Opcode.LDG, 10))
        result = schedule(s, TESLA_T4)
        issue = 10 * (TESLA_T4.lds_issue_cycles + TESLA_T4.ldg_issue_cycles)
        assert result.total_cycles >= issue

    def test_unit_busy_accounting(self):
        s = _stream((Opcode.LDS, 10), (Opcode.HMMA, 20))
        result = schedule(s, TESLA_T4)
        assert result.unit_busy[ExecUnit.MEM] == pytest.approx(10 * TESLA_T4.lds_issue_cycles)
        assert result.unit_busy[ExecUnit.TENSOR] == pytest.approx(20 * TESLA_T4.hmma_issue_cycles)


class TestOverlap:
    def test_independent_units_overlap(self):
        """MEM and TENSOR groups with no deps run concurrently."""
        s = InstructionStream()
        s.emit(Opcode.LDS, 100)
        s.emit(Opcode.HMMA, 100)
        total = schedule(s, TESLA_T4).total_cycles
        lds_time = 100 * TESLA_T4.lds_issue_cycles + TESLA_T4.lds_latency_cycles
        hmma_time = 100 * TESLA_T4.hmma_issue_cycles + TESLA_T4.hmma_latency_cycles
        assert total == pytest.approx(max(lds_time, hmma_time))

    def test_completion_dependency_serializes(self):
        s = InstructionStream()
        g = s.emit(Opcode.LDS, 100)
        s.emit(Opcode.HMMA, 100, depends_on=(g,))
        total = schedule(s, TESLA_T4).total_cycles
        lds_time = 100 * TESLA_T4.lds_issue_cycles + TESLA_T4.lds_latency_cycles
        hmma_time = 100 * TESLA_T4.hmma_issue_cycles + TESLA_T4.hmma_latency_cycles
        assert total == pytest.approx(lds_time + hmma_time)

    def test_issue_after_cheaper_than_completion_dep(self):
        """issue_after releases the consumer at issue end, not completion —
        the distinction behind the warp-staggered no-hiding model."""
        dep_stream = InstructionStream()
        g = dep_stream.emit(Opcode.LDG, 10)
        dep_stream.emit(Opcode.HMMA, 10, depends_on=(g,))

        issue_stream = InstructionStream()
        g = issue_stream.emit(Opcode.LDG, 10)
        issue_stream.emit(Opcode.HMMA, 10, issue_after=(g,))

        t_dep = schedule(dep_stream, TESLA_T4).total_cycles
        t_issue = schedule(issue_stream, TESLA_T4).total_cycles
        # issue_after starts the HMMA at the LDG's issue end, so the HMMA
        # hides inside the LDG's completion latency instead of adding to it.
        assert t_issue < t_dep
        assert t_dep - t_issue <= TESLA_T4.ldg_latency_cycles

    def test_software_pipeline_beats_serial_chain(self):
        """Two iterations of load->compute: pipelined vs serialized."""
        serial = InstructionStream()
        prev = None
        for _ in range(4):
            ld = serial.emit(Opcode.LDS, 50, depends_on=(prev,) if prev is not None else ())
            prev = serial.emit(Opcode.HMMA, 50, depends_on=(ld,))

        pipelined = InstructionStream()
        loads = [pipelined.emit(Opcode.LDS, 50) for _ in range(4)]
        for ld in loads:
            pipelined.emit(Opcode.HMMA, 50, depends_on=(ld,))

        assert schedule(pipelined, TESLA_T4).total_cycles < schedule(serial, TESLA_T4).total_cycles


class TestValidation:
    def test_forward_dependency_rejected(self):
        s = InstructionStream()
        s.emit(Opcode.LDS, 1, depends_on=(5,))
        with pytest.raises(ValueError, match="invalid dependency"):
            schedule(s, TESLA_T4)

    def test_forward_issue_after_rejected(self):
        s = InstructionStream()
        s.emit(Opcode.LDS, 1, issue_after=(3,))
        with pytest.raises(ValueError, match="issue-order"):
            schedule(s, TESLA_T4)

    def test_self_dependency_rejected(self):
        s = InstructionStream()
        s.emit(Opcode.LDS, 1, depends_on=(0,))
        with pytest.raises(ValueError):
            schedule(s, TESLA_T4)


class TestUtilization:
    def test_tensor_utilization_of_pure_compute(self):
        s = _stream((Opcode.HMMA, 1000))
        r = schedule(s, TESLA_T4)
        assert r.tensor_utilization == pytest.approx(
            1000 * TESLA_T4.hmma_issue_cycles / r.total_cycles
        )
        assert 0.9 < r.tensor_utilization <= 1.0

    def test_zero_cycles_zero_utilization(self):
        r = schedule(InstructionStream(), TESLA_T4)
        assert r.tensor_utilization == 0.0
        assert r.mem_utilization == 0.0
