"""Tests for the L2 cache simulator, the address-trace generator, and the
traffic-model validation experiment."""

import pytest

from repro.experiments.traffic_validation import validate_traffic_model
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.spec import TESLA_T4
from repro.gpu.trace import Segment, block_iteration_segments, wave_trace
from repro.tensorize.plan import TensorizationPlan
from repro.tensorize.tiling import T4_TILING, TilingConfig

SMALL = TilingConfig(32, 32, 16, 16, 16, 8)


class TestCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1000, line_bytes=128, ways=16)

    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(capacity_bytes=16 * 1024)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x1040)  # same 128B line
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_lru_eviction_within_a_set(self):
        # 2 ways x 1 set: third distinct line evicts the least recent.
        cache = SetAssociativeCache(capacity_bytes=256, line_bytes=128, ways=2)
        assert cache.num_sets == 1
        cache.access(0 * 128)
        cache.access(1 * 128)
        cache.access(0 * 128)  # refresh line 0
        cache.access(2 * 128)  # evicts line 1
        assert not cache.access(1 * 128)  # line 1 was evicted
        assert cache.access(0 * 128) or True  # line 0 may or may not remain
        assert cache.stats.evictions >= 1

    def test_access_range_line_granularity(self):
        cache = SetAssociativeCache(capacity_bytes=16 * 1024)
        cache.access_range(0, 300)  # spans 3 lines
        assert cache.stats.misses == 3
        assert cache.stats.fill_bytes == 3 * 128

    def test_access_range_empty(self):
        cache = SetAssociativeCache(capacity_bytes=16 * 1024)
        assert cache.access_range(0, 0) == 0

    def test_working_set_fits(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 1024)
        for _ in range(3):
            cache.access_range(0, 32 * 1024)
        # after the cold pass everything hits
        assert cache.stats.hit_rate > 0.6
        assert cache.resident_bytes <= 64 * 1024

    def test_reset_stats(self):
        cache = SetAssociativeCache(capacity_bytes=16 * 1024)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0


class TestTrace:
    def test_segment_count_per_iteration(self):
        plan = TensorizationPlan(64, 64, 64, SMALL)
        segs = block_iteration_segments(plan, 0, 0, 0)
        # 2 A splits x bm rows + 2 B splits x bk rows
        assert len(segs) == 2 * SMALL.bm + 2 * SMALL.bk

    def test_total_bytes_match_eq2(self):
        """The trace's bytes per iteration equal Eq. 2 exactly."""
        plan = TensorizationPlan(128, 128, 128, SMALL)
        segs = block_iteration_segments(plan, 1, 2, 3)
        assert sum(s.nbytes for s in segs) == SMALL.ldg_bytes_per_iteration

    def test_segments_within_allocation(self):
        plan = TensorizationPlan(64, 64, 64, SMALL)
        total_bytes = 2 * (64 * 64 * 2) + 2 * (64 * 64 * 2)
        for it in range(plan.k_iterations):
            for seg in block_iteration_segments(plan, 1, 1, it):
                assert 0 <= seg.start
                assert seg.start + seg.nbytes <= total_bytes

    def test_adjacent_blocks_share_b_panels(self):
        """Two blocks in the same grid column touch identical B segments —
        the sharing the wave-reuse model banks on."""
        plan = TensorizationPlan(128, 64, 64, SMALL)
        s0 = {((s.start, s.nbytes)) for s in block_iteration_segments(plan, 0, 0, 0)}
        s1 = {((s.start, s.nbytes)) for s in block_iteration_segments(plan, 1, 0, 0)}
        assert s0 & s1  # shared B segments

    def test_wave_trace_interleaves_iterations(self):
        plan = TensorizationPlan(64, 64, 32, SMALL)
        segs = list(wave_trace(plan, [(0, 0), (0, 1)], iterations=2))
        per_block_iter = 2 * SMALL.bm + 2 * SMALL.bk
        assert len(segs) == 2 * 2 * per_block_iter
        assert all(isinstance(s, Segment) for s in segs)


class TestTrafficValidation:
    def test_model_within_band(self):
        """The analytic wave-reuse model agrees with the functional L2 to
        within line-granularity effects (documented in EXPERIMENTS.md)."""
        v = validate_traffic_model(n=1024, iterations=6)
        assert 0.8 <= v.ratio <= 2.0
        assert v.l2_hit_rate > 0.7  # cross-block panel sharing is real

    def test_exact_at_small_size(self):
        v = validate_traffic_model(n=1024, iterations=8)
        assert v.ratio == pytest.approx(1.0, abs=0.15)

    def test_line_granularity_overfetch_at_larger_size(self):
        """At larger N the 64-byte A-row segments pay 128-byte lines under
        capacity pressure — measured exceeds analytic, bounded by 2x."""
        v = validate_traffic_model(n=4096, iterations=4)
        assert 1.0 <= v.ratio <= 2.0

    def test_wave_size(self):
        v = validate_traffic_model(n=2048, iterations=2)
        assert v.wave_blocks == min(
            TESLA_T4.num_sms, TensorizationPlan(2048, 2048, 2048, T4_TILING).grid_blocks
        )
