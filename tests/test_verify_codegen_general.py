"""Tests for the self-check entry point and codegen over arbitrary tilings."""

import numpy as np
import pytest

from repro.gpu.sass import validate
from repro.kernels.markidis import MARKIDIS_TILING
from repro.tensorcore.mma import M16N16K16
from repro.tensorize.codegen import build_register_map, generate_iteration_sass, generate_kernel_sass
from repro.tensorize.tiling import TilingConfig
from repro.verify import VerificationError, verify


class TestSelfCheck:
    def test_passes_and_reports(self):
        summary = verify()
        assert summary["profiling_min_bits"] >= 21
        assert summary["speedup_vs_fp32"] > 2.0
        assert summary["emulation_error"] < summary["half_error"]

    def test_detects_broken_invariant(self, monkeypatch):
        """Sabotage the split and confirm the check trips."""
        from repro.splits import round as round_mod

        class BrokenSplit(round_mod.RoundSplit):
            def max_reconstruction_error(self, x):
                return 1.0  # nonsense

        monkeypatch.setattr(round_mod, "RoundSplit", BrokenSplit)
        # verify() imports RoundSplit from repro.splits.round lazily
        import repro.verify as v

        with pytest.raises(VerificationError, match="round-split"):
            v.verify()


class TestCodegenAcrossTilings:
    CONFIGS = [
        TilingConfig(128, 128, 32, 64, 32, 8),  # the paper's point
        MARKIDIS_TILING,  # 64/64/16 at WMMA shape
        TilingConfig(64, 64, 16, 32, 32, 8),
        TilingConfig(64, 32, 16, 32, 16, 8),
    ]

    @pytest.mark.parametrize("config", CONFIGS, ids=[str(c) for c in CONFIGS])
    def test_register_map_disjoint_and_bounded(self, config):
        rm = build_register_map(config)
        assert rm.total <= 256
        assert rm.context_base + rm.context_count <= 256

    @pytest.mark.parametrize("config", CONFIGS, ids=[str(c) for c in CONFIGS])
    @pytest.mark.parametrize("hiding", [True, False])
    def test_iteration_listing_validates(self, config, hiding):
        listing = generate_iteration_sass(config, latency_hiding=hiding)
        validate(listing, max_registers=256)
        assert listing.count("HMMA") > 0
        assert listing.count("BAR") == 1

    @pytest.mark.parametrize("config", CONFIGS, ids=[str(c) for c in CONFIGS])
    def test_full_kernel_validates(self, config):
        kernel = generate_kernel_sass(config, k=config.bk * 4)
        validate(kernel, max_registers=256)
        assert kernel.instrs[-1].opcode == "EXIT"

    def test_hmma_count_scales_with_terms(self):
        one = generate_iteration_sass(scheme_terms=1).count("HMMA")
        four = generate_iteration_sass(scheme_terms=4).count("HMMA")
        assert four == 4 * one
