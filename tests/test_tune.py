"""Tests for repro.tune: search space, strategies, the bit gate, the
persisted database, and the router's tuned-pricing integration.

The load-bearing invariants:

* every enumerated candidate is a *legal* kernel configuration;
* search strategies agree on the winner of a small space (the score is
  a deterministic total order, so they must);
* the bit-correctness gate rejects functional mutations (scheme, a
  ``tk`` cadence that moves a rounding point) and passes candidates
  that provably cannot change bits;
* the database round-trips through JSON, degrades to empty on corrupt
  input, and refuses stale entries;
* attaching a database to a router changes *pricing only* — the bits a
  decision produces are identical with and without it.
"""

import json
import os

import numpy as np
import pytest

from repro.gpu.spec import RTX6000, TESLA_T4
from repro.kernels.registry import get_kernel
from repro.perf.split_cache import SplitCache, default_maxsize
from repro.serve.api import GemmRequest
from repro.serve.router import PrecisionRouter
from repro.tune import (
    DB_SCHEMA,
    SearchSpace,
    TuneCandidate,
    TuneEntry,
    TuningDatabase,
    exhaustive_search,
    beam_search,
    multistart_search,
    quick_space,
    search,
    shape_bucket,
    spec_fingerprint,
    static_baseline,
    validate_db_document,
    verify_bit_correct,
)
from repro.tune.cli import main as tune_main
from repro.tune.verify import functional_identity


SHAPE = (32, 32, 32)


def _tuned_db(tmp_path, shapes=(SHAPE,), spec=TESLA_T4):
    """Run the real CLI pipeline into a temp database file."""
    path = str(tmp_path / "TUNE_db.json")
    shape_arg = ",".join("x".join(str(d) for d in s) for s in shapes)
    assert tune_main(["--quick", "--db", path, "--shapes", shape_arg]) == 0
    return path


# -- space ---------------------------------------------------------------

class TestSearchSpace:
    def test_every_candidate_is_legal(self):
        space = quick_space()
        count = 0
        for cand in space.candidates():
            t = cand.tiling
            assert t.bm % t.wm == 0 and t.bn % t.wn == 0
            assert t.bk % t.wk == 0 and t.wk <= t.bk
            assert t.warps_per_block <= space.max_warps
            count += 1
        assert 0 < count <= 4096

    def test_neighbors_stay_inside_the_space(self):
        space = quick_space()
        cand = next(space.candidates())
        for nb in space.neighbors(cand):
            assert space.contains_tiling(nb.tiling)
            assert nb.sort_key() != cand.sort_key()

    def test_candidate_dict_round_trip(self):
        space = quick_space()
        for cand in space.candidates():
            assert TuneCandidate.from_dict(cand.as_dict()) == cand

    def test_random_draws_are_legal_and_seeded(self):
        space = quick_space()
        a = [space.random(np.random.default_rng(7)) for _ in range(5)]
        b = [space.random(np.random.default_rng(7)) for _ in range(5)]
        assert a == b
        for cand in a:
            assert space.contains_tiling(cand.tiling)


# -- search --------------------------------------------------------------

class TestSearch:
    def test_exhaustive_beats_static_on_small_serving_shape(self):
        base = static_baseline(SHAPE, TESLA_T4)
        out = exhaustive_search(quick_space(), SHAPE, TESLA_T4, jobs=1)
        assert out.best is not None
        assert out.best.cycles < base.cycles

    def test_beam_agrees_with_exhaustive_on_small_space(self):
        space = quick_space()
        ex = exhaustive_search(space, SHAPE, TESLA_T4, jobs=1)
        bm = beam_search(space, SHAPE, TESLA_T4, jobs=1)
        assert bm.best.candidate.sort_key() == ex.best.candidate.sort_key()
        assert bm.best.cycles == ex.best.cycles
        # beam must not have paid the full enumeration to get there
        assert bm.evaluated < ex.evaluated

    def test_multistart_matches_on_small_space(self):
        space = quick_space()
        ex = exhaustive_search(space, SHAPE, TESLA_T4, jobs=1)
        ms = multistart_search(space, SHAPE, TESLA_T4, jobs=1, seed=3)
        assert ms.best.cycles == ex.best.cycles

    def test_parallel_evaluation_changes_nothing(self):
        space = quick_space()
        serial = exhaustive_search(space, SHAPE, TESLA_T4, jobs=1)
        fanned = exhaustive_search(space, SHAPE, TESLA_T4, jobs=2)
        assert serial.best.candidate == fanned.best.candidate

    def test_exhaustive_refuses_oversized_spaces(self):
        with pytest.raises(ValueError):
            exhaustive_search(quick_space(), SHAPE, TESLA_T4, jobs=1, limit=3)

    def test_ranking_is_admissible_and_sorted(self):
        out = exhaustive_search(quick_space(), SHAPE, TESLA_T4, jobs=1)
        budget = static_baseline(SHAPE, TESLA_T4).certified_bound
        scores = [s.score() for s in out.ranked]
        assert scores == sorted(scores)
        assert all(s.certified_bound <= budget * (1 + 1e-12) for s in out.ranked)

    def test_dispatcher_picks_exhaustive_for_small_spaces(self):
        out = search(quick_space(), SHAPE, TESLA_T4, strategy="auto", jobs=1)
        assert out.strategy == "exhaustive"


# -- the bit gate --------------------------------------------------------

class TestBitGate:
    def test_tiling_only_candidates_pass(self):
        out = exhaustive_search(quick_space(), SHAPE, TESLA_T4, jobs=1)
        assert verify_bit_correct(out.best.candidate, SHAPE)

    def test_scheme_mutation_is_rejected(self):
        cand = TuneCandidate(
            tiling=static_baseline(SHAPE, TESLA_T4).candidate.tiling,
            scheme="markidis",
        )
        assert not verify_bit_correct(cand, SHAPE)

    def test_tk_cadence_that_moves_a_rounding_point_is_rejected(self):
        # k=32 with tk=8: four chunks instead of two -> the accumulator
        # rounds at different points and some operand draw shows it.
        cand = TuneCandidate(
            tiling=static_baseline(SHAPE, TESLA_T4).candidate.tiling, tk=8
        )
        assert not verify_bit_correct(cand, SHAPE)

    def test_equivalent_tk_cadence_passes(self):
        # k=16 fits one chunk under tk=16 and tk=32 alike: the chunk
        # sums coincide exactly, so the gate must pass the mutation.
        shape = (16, 16, 16)
        cand = TuneCandidate(
            tiling=static_baseline(shape, TESLA_T4).candidate.tiling, tk=32
        )
        assert verify_bit_correct(cand, shape)


# -- database ------------------------------------------------------------

def _entry(spec=TESLA_T4, shape=SHAPE, **overrides) -> TuneEntry:
    cand = TuneCandidate(tiling=static_baseline(shape, spec).candidate.tiling)
    fields = dict(
        kernel="egemm-tc",
        spec_fingerprint=spec_fingerprint(spec),
        spec_name=spec.name,
        bucket=shape_bucket(shape),
        shape=shape,
        candidate=cand,
        cycles=100.0,
        seconds=1e-6,
        static_cycles=200.0,
        static_seconds=2e-6,
        certified_bound=1e-6,
        functional=functional_identity(cand),
        verified_bit_correct=True,
        strategy="exhaustive",
        evaluated=10,
    )
    fields.update(overrides)
    return TuneEntry(**fields)


class TestDatabase:
    def test_round_trip_preserves_entries(self, tmp_path):
        path = str(tmp_path / "db.json")
        db = TuningDatabase()
        db.put(_entry())
        db.save(path)
        loaded = TuningDatabase.load(path)
        assert loaded.entries == db.entries
        assert not loaded.problems
        doc = json.load(open(path))
        assert doc["schema"] == DB_SCHEMA
        assert validate_db_document(doc) == []

    def test_corrupt_file_degrades_to_empty(self, tmp_path):
        path = str(tmp_path / "db.json")
        with open(path, "w") as fh:
            fh.write("{ not json")
        db = TuningDatabase.load(path)
        assert len(db) == 0
        assert db.problems
        assert db.counters["corrupt_loads"] == 1
        # a router on a corrupt database keeps serving statically
        router = PrecisionRouter(spec=TESLA_T4, tuning_db=db)
        seconds = router.seconds_for("egemm-tc", SHAPE)
        assert seconds == PrecisionRouter(spec=TESLA_T4).seconds_for("egemm-tc", SHAPE)
        assert router.tuned_misses == 1

    def test_wrong_schema_is_ignored(self, tmp_path):
        path = str(tmp_path / "db.json")
        with open(path, "w") as fh:
            json.dump({"schema": "something/else", "entries": {}}, fh)
        db = TuningDatabase.load(path)
        assert len(db) == 0 and db.problems

    def test_stale_fingerprint_is_a_miss(self):
        # An entry tuned under different simulator constants keys under
        # its own fingerprint: the lookup misses, never mispricing.
        db = TuningDatabase()
        db.put(_entry(spec_fingerprint="feedfacefeedface"))
        assert db.lookup(TESLA_T4, "egemm-tc", SHAPE) is None
        assert db.counters["misses"] == 1
        assert db.counters["hits"] == 0

    def test_rekeyed_stale_entry_falls_back(self):
        # A tampered file can key a stale entry under the live
        # fingerprint; the lookup guard re-checks the stored one.
        db = TuningDatabase()
        entry = _entry(spec_fingerprint="feedfacefeedface")
        db.entries[f"{spec_fingerprint(TESLA_T4)}/{entry.bucket}/{entry.kernel}"] = entry
        assert db.lookup(TESLA_T4, "egemm-tc", SHAPE) is None
        assert db.counters["fallbacks"] == 1
        assert db.counters["hits"] == 0

    def test_unverified_entry_falls_back(self):
        db = TuningDatabase()
        db.put(_entry(verified_bit_correct=False))
        assert db.lookup(TESLA_T4, "egemm-tc", SHAPE) is None
        assert db.counters["fallbacks"] == 1

    def test_lookup_covers_the_whole_bucket(self):
        db = TuningDatabase()
        db.put(_entry())
        assert db.lookup(TESLA_T4, "egemm-tc", (31, 30, 29)) is not None
        assert db.lookup(TESLA_T4, "egemm-tc", (64, 32, 32)) is None  # other bucket

    def test_validate_flags_broken_entries(self):
        entry = _entry(cycles=300.0)  # not below static_cycles=200
        doc = {"schema": DB_SCHEMA, "entries": {entry.key: entry.to_json()}}
        assert any("strictly below" in p for p in validate_db_document(doc))

    def test_fingerprint_distinguishes_specs(self):
        assert spec_fingerprint(TESLA_T4) != spec_fingerprint(RTX6000)
        assert spec_fingerprint(TESLA_T4) == spec_fingerprint(TESLA_T4)

    def test_shape_bucket_rounds_up_to_pow2(self):
        assert shape_bucket((32, 32, 32)) == "32x32x32"
        assert shape_bucket((33, 32, 100)) == "64x32x128"
        assert shape_bucket((1, 1, 1)) == "1x1x1"


# -- router integration --------------------------------------------------

class TestRouterIntegration:
    def test_tuned_pricing_is_cheaper_and_counted(self, tmp_path):
        path = _tuned_db(tmp_path)
        db = TuningDatabase.load(path)
        tuned = PrecisionRouter(spec=TESLA_T4, tuning_db=db)
        static = PrecisionRouter(spec=TESLA_T4)
        assert tuned.seconds_for("egemm-tc", SHAPE) < static.seconds_for("egemm-tc", SHAPE)
        assert tuned.tuned_hits == 1
        stats = tuned.stats()
        assert stats["tuned_hits"] == 1 and stats["tuned_entries"] == 1

    def test_static_router_stats_carry_no_tuned_keys(self):
        stats = PrecisionRouter(spec=TESLA_T4).stats()
        assert not any(key.startswith("tuned") for key in stats)

    def test_functional_identity_guard_refuses_mismatched_entries(self):
        db = TuningDatabase()
        db.put(_entry(functional={"scheme": "markidis", "tk": 16}))
        router = PrecisionRouter(spec=TESLA_T4, tuning_db=db)
        static = PrecisionRouter(spec=TESLA_T4)
        assert router.seconds_for("egemm-tc", SHAPE) == static.seconds_for("egemm-tc", SHAPE)
        assert router.tuned_fallbacks == 1 and router.tuned_hits == 0

    def test_bit_identity_with_and_without_db(self, tmp_path):
        """Property: for identical winning kernels, a tuned router's
        decision produces byte-identical results to a static router's —
        the database shapes pricing, never execution."""
        path = _tuned_db(tmp_path)
        db = TuningDatabase.load(path)
        tuned = PrecisionRouter(spec=TESLA_T4, tuning_db=db)
        static = PrecisionRouter(spec=TESLA_T4)
        rng = np.random.default_rng(11)
        checked = 0
        for slo in (1e-3, 1e-4, 1e-5):
            for m, k, n in ((32, 32, 32), (31, 17, 29), (64, 32, 64)):
                a = rng.standard_normal((m, k)).astype(np.float32)
                b = rng.standard_normal((k, n)).astype(np.float32)
                req_t = GemmRequest(a=a, b=b, max_rel_error=slo)
                req_s = GemmRequest(a=a, b=b, max_rel_error=slo)
                d_t = tuned.route(req_t)
                d_s = static.route(req_s)
                if d_t.kernel != d_s.kernel:
                    continue
                out_t = tuned.kernels[d_t.kernel].compute(a, b)
                out_s = static.kernels[d_s.kernel].compute(a, b)
                assert out_t.tobytes() == out_s.tobytes()
                checked += 1
        assert checked > 0

    def test_degenerate_shapes_skip_the_db(self, tmp_path):
        db = TuningDatabase.load(_tuned_db(tmp_path))
        router = PrecisionRouter(spec=TESLA_T4, tuning_db=db)
        assert router.seconds_for("egemm-tc", (0, 32, 32)) > 0
        assert router.tuned_hits == 0 and router.tuned_misses == 0


# -- CLI -----------------------------------------------------------------

class TestCli:
    def test_quick_check_improves_at_least_two_buckets(self, tmp_path):
        path = str(tmp_path / "TUNE_db.json")
        assert tune_main(["--quick", "--check", "--db", path]) == 0
        doc = json.load(open(path))
        assert validate_db_document(doc) == []
        fp = spec_fingerprint(TESLA_T4)
        entries = [
            TuneEntry.from_json(raw) for raw in doc["entries"].values()
        ]
        improved = [e for e in entries if e.spec_fingerprint == fp
                    and e.cycles < e.static_cycles]
        assert len(improved) >= 2
        assert all(e.verified_bit_correct for e in improved)

    def test_rerun_is_idempotent(self, tmp_path):
        path = str(tmp_path / "TUNE_db.json")
        shapes = ["--shapes", "32x32x32,64x32x64"]
        assert tune_main(["--quick", "--db", path] + shapes) == 0
        first = open(path).read()
        assert tune_main(["--quick", "--db", path] + shapes) == 0
        assert open(path).read() == first

    def test_check_fails_on_a_corrupted_database(self, tmp_path):
        path = str(tmp_path / "TUNE_db.json")
        assert tune_main(["--quick", "--db", path, "--shapes", "32x32x32"]) == 0
        doc = json.load(open(path))
        for raw in doc["entries"].values():
            raw["cycles"] = raw["static_cycles"] + 1.0
        with open(path, "w") as fh:
            json.dump(doc, fh)
        from repro.tune.cli import check_database

        problems = check_database(path, TESLA_T4, [SHAPE], echo=lambda *_: None)
        assert problems


# -- split-cache default sizing (satellite) ------------------------------

class TestSplitCacheDefault:
    def test_default_comes_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPLITCACHE_SIZE", raising=False)
        assert SplitCache().maxsize == 64
        monkeypatch.setenv("REPRO_SPLITCACHE_SIZE", "9")
        assert SplitCache().maxsize == 9
        assert default_maxsize() == 9
        monkeypatch.setenv("REPRO_SPLITCACHE_SIZE", "not-a-number")
        assert SplitCache().maxsize == 64
        monkeypatch.setenv("REPRO_SPLITCACHE_SIZE", "-3")
        assert SplitCache().maxsize == 64

    def test_explicit_maxsize_still_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPLITCACHE_SIZE", "9")
        assert SplitCache(maxsize=3).maxsize == 3

    def test_steady_state_hit_rate_on_the_serving_mix(self, monkeypatch):
        """The cold default must hold the serving working set: iterating
        the five-bucket shape mix with stationary operands, the second
        and later passes hit on every operand (only the first pass
        misses), pinning the steady-state rate at exactly 9/10."""
        monkeypatch.delenv("REPRO_SPLITCACHE_SIZE", raising=False)
        kernel = get_kernel("egemm-tc")
        rng = np.random.default_rng(0)
        shapes = ((32, 32, 32), (64, 32, 64), (16, 64, 16),
                  (128, 32, 128), (192, 32, 192))
        operands = []
        for m, k, n in shapes:
            a = rng.standard_normal((m, k)).astype(np.float32)
            b = rng.standard_normal((k, n)).astype(np.float32)
            a.flags.writeable = False
            b.flags.writeable = False
            operands.append((a, b))
        passes = 5
        for _ in range(passes):
            for a, b in operands:
                kernel.compute(a, b)
        stats = kernel.split_cache.stats
        assert stats.evictions == 0
        total = stats.hits + stats.misses
        assert stats.misses == 2 * len(shapes)
        assert stats.hits / total == pytest.approx(1 - 1 / passes)
