"""Tests for the end-to-end kernels (Table 5): functional + timing paths."""

import numpy as np
import pytest

from repro.emulation.gemm import emulated_gemm, reference_single
from repro.emulation.schemes import EGEMM, HALF, MARKIDIS
from repro.fp.error import max_error
from repro.gpu.spec import RTX6000, TESLA_T4
from repro.kernels import (
    CublasCudaFp32,
    CublasTcEmulation,
    CublasTcHalf,
    EgemmTcKernel,
    MarkidisKernel,
    SdkCudaFp32,
    get_kernel,
    split_pass_seconds,
    table5_rows,
)


class TestRegistry:
    def test_all_kernels_constructible(self):
        for name in (
            "egemm-tc",
            "cublas-cuda-fp32",
            "cublas-tc-half",
            "cublas-tc-emulation",
            "sdk-cuda-fp32",
            "markidis",
        ):
            k = get_kernel(name)
            assert k.info.name

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_kernel("magma")

    def test_table5_matches_paper(self):
        rows = {r["name"]: r for r in table5_rows()}
        assert rows["cuBLAS-CUDA-FP32"]["precision"] == "single"
        assert rows["cuBLAS-TC-Half"]["precision"] == "half"
        assert rows["cuBLAS-TC-Emulation"]["precision"] == "extended"
        assert rows["Markidis"]["precision"] == "extended*"
        assert rows["kMeans"]["source"] == "[2]"
        assert rows["kNN"]["source"] == "[9]"
        assert len(rows) == 7


class TestFunctionalPaths:
    def test_egemm_functional_matches_scheme(self, small_matrices):
        a, b, c = small_matrices
        assert np.array_equal(EgemmTcKernel().compute(a, b, c), emulated_gemm(a, b, c, scheme=EGEMM))

    def test_markidis_functional_matches_scheme(self, small_matrices):
        a, b, c = small_matrices
        assert np.array_equal(
            MarkidisKernel().compute(a, b, c), emulated_gemm(a, b, c, scheme=MARKIDIS)
        )

    def test_tc_half_functional(self, small_matrices):
        a, b, c = small_matrices
        assert np.array_equal(CublasTcHalf().compute(a, b, c), emulated_gemm(a, b, c, scheme=HALF))

    def test_fp32_kernels_are_reference(self, small_matrices):
        a, b, c = small_matrices
        ref = reference_single(a, b, c)
        assert np.array_equal(CublasCudaFp32().compute(a, b, c), ref)
        assert np.array_equal(SdkCudaFp32().compute(a, b, c), ref)

    def test_emulation_baseline_same_numerics_as_egemm(self, small_matrices):
        """cuBLAS-TC-Emulation implements the *same* Algorithm 1."""
        a, b, c = small_matrices
        assert np.array_equal(
            CublasTcEmulation().compute(a, b, c), EgemmTcKernel().compute(a, b, c)
        )

    def test_precision_ordering(self, small_matrices):
        a, b, c = small_matrices
        ref = reference_single(a, b, c)
        assert max_error(EgemmTcKernel().compute(a, b, c), ref) < max_error(
            CublasTcHalf().compute(a, b, c), ref
        )


class TestTimingModels:
    N = 8192

    def test_appendix_anchors(self):
        """Appendix A.3: ~12 / ~4 / ~1 TFLOPS at 8192^3 on T4."""
        assert EgemmTcKernel().tflops(self.N, self.N, self.N) == pytest.approx(12.0, rel=0.1)
        assert CublasCudaFp32().tflops(self.N, self.N, self.N) == pytest.approx(4.0, rel=0.15)
        assert SdkCudaFp32().tflops(self.N, self.N, self.N) == pytest.approx(1.0, rel=0.15)

    def test_speedup_ordering_at_large_size(self):
        egemm = EgemmTcKernel().tflops(self.N, self.N, self.N)
        emu = CublasTcEmulation().tflops(self.N, self.N, self.N)
        fp32 = CublasCudaFp32().tflops(self.N, self.N, self.N)
        sdk = SdkCudaFp32().tflops(self.N, self.N, self.N)
        markidis = MarkidisKernel().tflops(self.N, self.N, self.N)
        assert egemm > emu > fp32 > sdk
        assert egemm > markidis

    def test_egemm_beats_emulation_by_about_135(self):
        egemm = EgemmTcKernel().tflops(self.N, self.N, self.N)
        emu = CublasTcEmulation().tflops(self.N, self.N, self.N)
        assert 1.2 < egemm / emu < 1.6  # paper: 1.35x

    def test_markidis_three_times_slower(self):
        egemm = EgemmTcKernel().tflops(self.N, self.N, self.N)
        markidis = MarkidisKernel().tflops(self.N, self.N, self.N)
        assert 2.3 < egemm / markidis < 3.8  # paper: 3.0x

    def test_throughput_grows_with_size(self):
        k = EgemmTcKernel()
        curve = [k.tflops(n, n, n) for n in (1024, 2048, 4096, 8192)]
        assert curve == sorted(curve)

    def test_rtx6000_faster_than_t4(self):
        k = EgemmTcKernel()
        assert k.tflops(self.N, self.N, self.N, RTX6000) > 1.5 * k.tflops(
            self.N, self.N, self.N, TESLA_T4
        )

    def test_latency_hiding_ablation(self):
        on = EgemmTcKernel(latency_hiding=True).tflops(self.N, self.N, self.N)
        off = EgemmTcKernel(latency_hiding=False).tflops(self.N, self.N, self.N)
        assert 1.05 < on / off < 1.5  # paper: 1.14x

    def test_skew_cliff_for_emulation_baseline(self):
        """Figure 9a: the 4-call baseline collapses at (4096, 4096, 8192)."""
        emu = CublasTcEmulation()
        before = emu.tflops(2048, 2048, 4096)
        after = emu.tflops(4096, 4096, 8192)
        assert after < before
        egemm = EgemmTcKernel()
        assert egemm.tflops(4096, 4096, 8192) > 2 * after / 1.2

    def test_egemm_insensitive_to_k_skew(self):
        egemm = EgemmTcKernel()
        square = egemm.tflops(4096, 4096, 4096)
        skewed = egemm.tflops(4096, 4096, 8192)
        assert skewed == pytest.approx(square, rel=0.1)

    def test_split_pass_cost_scales_with_operands(self):
        small = split_pass_seconds(1024, 1024, 1024, TESLA_T4)
        large = split_pass_seconds(8192, 8192, 8192, TESLA_T4)
        assert large > 32 * small  # ~64x elements

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            EgemmTcKernel().time(0, 128, 128)

    def test_autotuned_tiling_cached(self):
        k = EgemmTcKernel()
        t1 = k.tiling_for(TESLA_T4)
        t2 = k.tiling_for(TESLA_T4)
        assert t1 is t2
        assert (t1.bm, t1.bn, t1.bk) == (128, 128, 32)

    def test_explicit_tiling_respected(self):
        from repro.tensorize.tiling import TilingConfig

        cfg = TilingConfig(64, 64, 16, 32, 32, 8)
        k = EgemmTcKernel(tiling=cfg)
        assert k.tiling_for(TESLA_T4) is cfg
