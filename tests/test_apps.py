"""Tests for the GEMM-based applications: kMeans, kNN, PCA (§7.5)."""

import numpy as np
import pytest

from repro.apps.common import AppTiming, non_gemm_seconds
from repro.apps.kmeans import KMeans, KMeansWorkload
from repro.apps.knn import KnnSearch, KnnWorkload
from repro.apps.pca import PCA
from repro.gpu.spec import TESLA_T4
from repro.kernels import CublasCudaFp32, CublasTcHalf, EgemmTcKernel


def _blobs(rng, n_per=60, centers=4, dim=12, spread=0.25):
    centroids = rng.normal(0, 5, (centers, dim)).astype(np.float32)
    pts = np.vstack([c + rng.normal(0, spread, (n_per, dim)) for c in centroids])
    labels = np.repeat(np.arange(centers), n_per)
    return pts.astype(np.float32), labels, centroids


class TestKMeansFunctional:
    def test_recovers_well_separated_blobs(self, rng):
        x, true_labels, _ = _blobs(rng)
        model = KMeans(n_clusters=4, seed=3).fit(x)
        pred = model.predict(x)
        # Each true cluster maps to exactly one predicted cluster.
        for c in range(4):
            assert len(np.unique(pred[true_labels == c])) == 1
        assert len(np.unique(pred)) == 4

    def test_kernel_swap_gives_same_clustering(self, rng):
        """The paper's premise: extended precision preserves app results."""
        x, _, _ = _blobs(rng)
        m_egemm = KMeans(4, kernel=EgemmTcKernel(), seed=3).fit(x)
        m_fp32 = KMeans(4, kernel=CublasCudaFp32(), seed=3).fit(x)
        assert np.array_equal(m_egemm.predict(x), m_fp32.predict(x))

    def test_half_precision_can_differ(self, rng):
        """Sanity: the inertia under half-precision GEMM is measurably
        different, motivating extended precision."""
        x, _, _ = _blobs(rng, dim=64, spread=2.0)
        m_half = KMeans(4, kernel=CublasTcHalf(), seed=3).fit(x)
        m_fp32 = KMeans(4, kernel=CublasCudaFp32(), seed=3).fit(x)
        assert m_half.inertia_ != m_fp32.inertia_

    def test_convergence_and_inertia(self, rng):
        x, _, _ = _blobs(rng)
        model = KMeans(4, seed=0, max_iter=100).fit(x)
        assert 1 < model.n_iter_ <= 100
        assert model.inertia_ > 0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((4, 2), np.float32))

    def test_validation(self, rng):
        x, _, _ = _blobs(rng)
        with pytest.raises(ValueError):
            KMeans(0).fit(x)
        with pytest.raises(ValueError):
            KMeans(4).fit(x[0])

    def test_inertia_decreases_with_more_clusters(self, rng):
        x, _, _ = _blobs(rng)
        i2 = KMeans(2, seed=0).fit(x).inertia_
        i8 = KMeans(8, seed=0).fit(x).inertia_
        assert i8 < i2


class TestKnnFunctional:
    def test_matches_brute_force(self, rng):
        ref = rng.normal(0, 1, (150, 24)).astype(np.float32)
        q = rng.normal(0, 1, (20, 24)).astype(np.float32)
        knn = KnnSearch(k=7).fit(ref)
        dist, idx = knn.kneighbors(q)
        brute = np.linalg.norm(q[:, None, :] - ref[None, :, :], axis=2)
        expected = np.argsort(brute, axis=1, kind="stable")[:, :7]
        assert np.array_equal(np.sort(idx, axis=1), np.sort(expected, axis=1))
        assert np.all(np.diff(dist, axis=1) >= -1e-5)  # ascending

    def test_kernel_swap_same_neighbors(self, rng):
        ref = rng.normal(0, 1, (120, 16)).astype(np.float32)
        q = rng.normal(0, 1, (10, 16)).astype(np.float32)
        i1 = KnnSearch(5, kernel=EgemmTcKernel()).fit(ref).kneighbors(q)[1]
        i2 = KnnSearch(5, kernel=CublasCudaFp32()).fit(ref).kneighbors(q)[1]
        assert np.array_equal(i1, i2)

    def test_self_query_returns_self_first(self, rng):
        ref = rng.normal(0, 1, (50, 8)).astype(np.float32)
        _, idx = KnnSearch(1).fit(ref).kneighbors(ref)
        assert np.array_equal(idx[:, 0], np.arange(50))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            KnnSearch(0).fit(rng.normal(0, 1, (10, 4)).astype(np.float32))
        with pytest.raises(RuntimeError):
            KnnSearch(3).kneighbors(np.zeros((2, 4), np.float32))


class TestPca:
    def test_matches_numpy_covariance_eig(self, rng):
        x = rng.normal(0, 1, (200, 10)).astype(np.float32) @ rng.normal(
            0, 1, (10, 10)
        ).astype(np.float32)
        pca = PCA(n_components=3).fit(x)
        ref_cov = np.cov(x.astype(np.float64), rowvar=False)
        vals = np.sort(np.linalg.eigvalsh(ref_cov))[::-1][:3]
        assert np.allclose(pca.explained_variance_, vals, rtol=1e-3)

    def test_variance_descending(self, rng):
        x = rng.normal(0, 1, (100, 8)).astype(np.float32)
        pca = PCA(4).fit(x)
        assert np.all(np.diff(pca.explained_variance_) <= 1e-9)

    def test_transform_shape(self, rng):
        x = rng.normal(0, 1, (60, 8)).astype(np.float32)
        z = PCA(2).fit(x).transform(x)
        assert z.shape == (60, 2)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            PCA(0).fit(rng.normal(0, 1, (10, 4)).astype(np.float32))
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((3, 4), np.float32))


class TestWorkloadModels:
    def test_kmeans_speedup_curve_matches_paper_shape(self):
        """Fig 12a: rising from ~1.3-1.4 at 2048 to ~1.8-1.9 at 16384."""
        wl = KMeansWorkload()
        s_small = wl.speedup(2048)[2]
        s_large = wl.speedup(16384)[2]
        assert 1.2 < s_small < 1.55
        assert 1.7 < s_large < 2.05
        assert s_large > s_small

    def test_kmeans_gemm_fraction_near_67(self):
        """§1: GEMM is 67% of kMeans runtime at scale."""
        base, _, _ = KMeansWorkload().speedup(16384)
        assert 0.6 < base.gemm_fraction < 0.8

    def test_knn_speedup_curve(self):
        """Fig 12b: up to ~2.4x at 16384 points."""
        wl = KnnWorkload()
        s_small = wl.speedup(2048)[2]
        s_large = wl.speedup(16384)[2]
        assert s_small < s_large
        assert 2.1 < s_large < 2.7

    def test_knn_gemm_fraction_near_85(self):
        base, _, _ = KnnWorkload().speedup(16384)
        assert 0.8 < base.gemm_fraction < 0.92

    def test_monotone_speedups(self):
        for wl in (KMeansWorkload(), KnnWorkload()):
            curve = [wl.speedup(n)[2] for n in (2048, 4096, 8192, 16384)]
            assert curve == sorted(curve)

    def test_app_timing_properties(self):
        t = AppTiming("x", gemm_seconds=2.0, non_gemm_seconds=1.0)
        assert t.total_seconds == 3.0
        assert t.gemm_fraction == pytest.approx(2 / 3)

    def test_non_gemm_model_components(self):
        base = non_gemm_seconds(0.0, TESLA_T4, fixed_seconds=1e-3)
        assert base == pytest.approx(1e-3)
        scaled = non_gemm_seconds(320e9, TESLA_T4, inefficiency=1.0, fixed_seconds=0.0)
        assert scaled == pytest.approx(1.0)
