"""GEMM-based kMeans on synthetic gene-expression-style data (§7.5 / [31]).

The paper motivates kMeans/kNN with precision-sensitive scientific domains
(gene analysis, environmental science, astronomy).  This example builds a
synthetic high-dimensional clustering problem with *close* cluster pairs —
the regime where half-precision distance computation mis-assigns points —
and shows:

* the EGEMM-TC-backed clustering matches the fp32 baseline exactly,
* plain half-precision GEMM degrades the clustering,
* the modelled end-to-end speedup of swapping in EGEMM-TC (Figure 12a).

Usage::

    python examples/kmeans_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import CublasCudaFp32, CublasTcHalf, EgemmTcKernel, KMeans
from repro.apps.datasets import expression_profiles
from repro.apps.kmeans import KMeansWorkload


def agreement(a: np.ndarray, b: np.ndarray) -> float:
    """Fraction of points whose co-membership structure matches."""
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    return float((same_a == same_b).mean())


def main() -> None:
    rng = np.random.default_rng(7)
    x, truth = expression_profiles(rng)
    print(f"dataset: {x.shape[0]} profiles x {x.shape[1]} genes, 6 clusters")

    fits = {}
    for name, kernel in (
        ("cuBLAS-CUDA-FP32", CublasCudaFp32()),
        ("EGEMM-TC", EgemmTcKernel()),
        ("cuBLAS-TC-Half", CublasTcHalf()),
    ):
        model = KMeans(n_clusters=6, kernel=kernel, seed=11, max_iter=60).fit(x)
        fits[name] = model
        print(
            f"  {name:<18} inertia={model.inertia_:12.2f}  iters={model.n_iter_:2d}  "
            f"truth agreement={agreement(model.predict(x), truth):.4f}"
        )

    fp32_labels = fits["cuBLAS-CUDA-FP32"].predict(x)
    egemm_labels = fits["EGEMM-TC"].predict(x)
    half_labels = fits["cuBLAS-TC-Half"].predict(x)
    print(f"\nEGEMM-TC vs fp32 clustering agreement: {agreement(egemm_labels, fp32_labels):.4f}")
    print(f"half     vs fp32 clustering agreement: {agreement(half_labels, fp32_labels):.4f}")

    print("\nmodelled end-to-end speedup of the open-source kMeans [2] (Fig. 12a):")
    wl = KMeansWorkload()
    for n in (2048, 8192, 16384):
        base, fast, s = wl.speedup(n)
        print(
            f"  {n:>6} points: {s:.2f}x  "
            f"(GEMM share of baseline runtime: {base.gemm_fraction:.0%})"
        )


if __name__ == "__main__":
    main()
