"""GEMM-based kNN for high-dimensional feature matching (§7.5 / [9]).

Garcia et al.'s GPU kNN computes the full distance matrix as a GEMM (85%
of runtime) and selects the k smallest per query — the classic
image-feature-matching workload.  This example:

* matches synthetic SIFT-like descriptors against a reference set,
* verifies that EGEMM-TC-backed neighbors equal the fp32 baseline's
  while plain half-precision flips near-ties,
* prints the modelled end-to-end speedup sweep (Figure 12b).

Usage::

    python examples/knn_search.py
"""

from __future__ import annotations

import numpy as np

from repro import CublasCudaFp32, CublasTcHalf, EgemmTcKernel, KnnSearch
from repro.apps.datasets import descriptor_set
from repro.apps.knn import KnnWorkload


def main() -> None:
    rng = np.random.default_rng(3)
    ref, queries, truth = descriptor_set(rng)
    print(f"matching {queries.shape[0]} queries against {ref.shape[0]} descriptors with near-duplicate twins (dim=128)")

    results = {}
    for name, kernel in (
        ("cuBLAS-CUDA-FP32", CublasCudaFp32()),
        ("EGEMM-TC", EgemmTcKernel()),
        ("cuBLAS-TC-Half", CublasTcHalf()),
    ):
        knn = KnnSearch(k=5, kernel=kernel).fit(ref)
        _, idx = knn.kneighbors(queries)
        results[name] = idx
        recall = float((idx[:, 0] == truth).mean())
        print(f"  {name:<18} top-1 recall of the true source descriptor: {recall:.3f}")

    same_egemm = float((results["EGEMM-TC"] == results["cuBLAS-CUDA-FP32"]).mean())
    same_half = float((results["cuBLAS-TC-Half"] == results["cuBLAS-CUDA-FP32"]).mean())
    print(f"\nneighbor-list agreement with the fp32 baseline:")
    print(f"  EGEMM-TC       : {same_egemm:.4f}")
    print(f"  cuBLAS-TC-Half : {same_half:.4f}")

    print("\nmodelled end-to-end speedup of the open-source kNN [9] (Fig. 12b):")
    wl = KnnWorkload()
    for n in (2048, 8192, 16384):
        base, fast, s = wl.speedup(n)
        print(
            f"  {n:>6} points: {s:.2f}x  "
            f"(GEMM share of baseline runtime: {base.gemm_fraction:.0%})"
        )


if __name__ == "__main__":
    main()
