"""SASS-level inspection: the §5 optimizations, instruction by instruction.

Walks the reproduction's lowest layer the way the artifact's README walks
its .sass files:

1. generate the EGEMM-TC steady-state iteration in both instruction
   orders (Figure 6) and print the listing heads,
2. validate the listings (register budget, def-before-use, barriers) and
   demonstrate the architecture gate (the artifact's "Turing required" /
   V100-segfault rule, §A.2),
3. round-trip the listing through the text assembler (the TuringAs role),
4. render the timing simulator's issue timeline for both orders.

Usage::

    python examples/sass_inspection.py
"""

from __future__ import annotations

from repro.gpu.arch import TURING, VOLTA, UnsupportedArchitectureError, check_listing
from repro.gpu.assembler import parse
from repro.gpu.sass import validate
from repro.gpu.scheduler import schedule
from repro.gpu.spec import TESLA_T4
from repro.gpu.timeline import render_timeline
from repro.tensorize.codegen import build_register_map, generate_iteration_sass
from repro.tensorize.kernel import build_gemm_stream
from repro.tensorize.plan import TensorizationPlan
from repro.tensorize.tiling import T4_TILING


def main() -> None:
    regmap = build_register_map()
    print(f"register map: {regmap.total} registers/thread (paper: 232 of 256)")
    print(f"  C fragments   R{regmap.c_base}-R{regmap.c_base + regmap.c_count - 1}")
    print(f"  A/B fragments R{regmap.frag_base[0]}-R{regmap.frag_base[1] + regmap.frag_count - 1} (double-buffered)")
    print(f"  LDG staging   R{regmap.stage_base[0]}-R{regmap.stage_base[1] + regmap.stage_count - 1} (double-buffered)")
    print(f"  addressing    R{regmap.addr_base}-R{regmap.addr_base + regmap.addr_count - 1}")
    print(f"  context       R{regmap.context_base}-R{regmap.context_base + regmap.context_count - 1}")

    for hiding, title in ((True, "Figure 6, right (pipelined)"), (False, "Figure 6, left (naive)")):
        listing = generate_iteration_sass(latency_hiding=hiding)
        validate(listing, max_registers=256)
        print(f"\n=== {title}: {len(listing)} instructions/warp/iteration ===")
        print("\n".join(listing.render().splitlines()[:8]))
        print("  ...")

    # Architecture gating (§A.2's GPU requirement).
    listing = generate_iteration_sass()
    check_listing(listing, TURING)
    print("\nTuring: listing accepted (HMMA.1688 encoded)")
    try:
        check_listing(listing, VOLTA)
    except UnsupportedArchitectureError as err:
        print(f"Volta:  {err}")

    # Round-trip through the text assembler.
    reparsed = parse(listing.render(), live_in=listing.live_in)
    validate(reparsed, 256)
    assert reparsed.render().splitlines()[1:] == listing.render().splitlines()[1:]
    print("\nassembler round-trip: text -> listing -> text is identical")

    # Issue timelines of a few iterations on the timing simulator.
    plan = TensorizationPlan(512, 512, 512, T4_TILING)
    for hiding in (True, False):
        stream = build_gemm_stream(plan, latency_hiding=hiding)
        cycles = schedule(stream, TESLA_T4).total_cycles
        print(f"\n--- timeline ({'pipelined' if hiding else 'naive'}), {cycles:,.0f} cycles ---")
        print(render_timeline(stream, TESLA_T4, width=90))


if __name__ == "__main__":
    main()
