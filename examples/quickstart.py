"""Quickstart: extended-precision GEMM on the simulated Tensor Core.

Runs the library's front door end to end:

1. an extended-precision ``D = A @ B + C`` via the EGEMM-TC emulation,
2. the precision win over plain half-precision Tensor Core GEMM,
3. the simulated T4 throughput of the full EGEMM-TC kernel vs baselines.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CublasCudaFp32,
    CublasTcHalf,
    EgemmTcKernel,
    egemm,
    reference_exact,
    reference_single,
)
from repro.fp import max_error


def main() -> None:
    rng = np.random.default_rng(0)
    n = 512
    a = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    b = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)
    c = rng.uniform(-1.0, 1.0, (n, n)).astype(np.float32)

    # --- 1. extended-precision GEMM ------------------------------------
    d = egemm(a, b, c)
    print(f"egemm(a, b, c): {d.shape} {d.dtype}")

    # --- 2. precision: extended emulation vs plain half ----------------
    exact = reference_exact(a, b, c)
    single = reference_single(a, b, c)
    err_egemm = max_error(d, single)
    err_half = max_error(egemm(a, b, c, scheme="half"), single)
    print(f"max error vs single precision (Eq. 10 of the paper):")
    print(f"  EGEMM-TC round-split emulation : {err_egemm:.3e}")
    print(f"  plain half-precision GEMM      : {err_half:.3e}")
    print(f"  error reduction                : {err_half / err_egemm:.0f}x")
    print(f"  (vs float64 ground truth: {max_error(d, exact):.3e})")

    # --- 3. simulated performance on Tesla T4 --------------------------
    print("\nsimulated throughput at 8192^3 on Tesla T4 (Eq. 9 TFLOPS):")
    for kernel in (EgemmTcKernel(), CublasCudaFp32(), CublasTcHalf()):
        tflops = kernel.tflops(8192, 8192, 8192)
        print(f"  {kernel.info.name:<20} {tflops:6.2f} TFLOPS  ({kernel.info.precision} precision)")
    egemm_k = EgemmTcKernel()
    fp32_k = CublasCudaFp32()
    speedup = fp32_k.time(8192, 8192, 8192).seconds / egemm_k.time(8192, 8192, 8192).seconds
    print(f"\nEGEMM-TC speedup over cuBLAS-CUDA-FP32: {speedup:.2f}x (paper: ~3.1x)")


if __name__ == "__main__":
    main()
