"""Precision anatomy: the profiling workflow and the split algorithms.

Walks the paper's §3 story interactively:

1. run the generalized precision-profiling workflow against the simulated
   Tensor Core and print the Appendix-style report (which hypothesis about
   the core's internal precision survives bit-wise comparison),
2. dissect one value through round-split vs truncate-split, showing the
   recovered bits,
3. sweep Figure 7's emulation-precision comparison at small sizes.

Usage::

    python examples/precision_study.py
"""

from __future__ import annotations

import numpy as np

from repro import PrecisionProfiler, round_split, truncate_split
from repro.experiments.fig7 import run_fig7
from repro.fp import hex_bits
from repro.profiling import TileGenerator, format_profiling_report


def main() -> None:
    # --- 1. precision profiling (Figure 2a / Figure 3) -----------------
    print("=== precision profiling of the simulated Tensor Core ===")
    result = PrecisionProfiler().run(trials=1000, generator=TileGenerator(seed=0))
    print(format_profiling_report(result))

    # --- 2. split anatomy (Figure 4) ------------------------------------
    # A value that is *not* on the fp16 grid, so both splits must work:
    # round-split's high part rounds up and leaves a negative residual
    # (the extra sign-encoded bit); truncate-split chops and loses it.
    print("\n=== split anatomy of x = 0.7005 ===")
    x = np.array([0.7005], dtype=np.float32)
    for name, split in (("round-split", round_split), ("truncate-split", truncate_split)):
        pair = split(x)
        hi, lo = float(pair.hi[0]), float(pair.lo[0])
        residual = float(x[0]) - (hi + lo)
        print(f"{name}:")
        print(f"  x   = {float(x[0]):+.9f}  {hex_bits(float(x[0]))}")
        print(f"  hi  = {hi:+.9f}  (fp16 {hex_bits(hi, np.float16)})")
        print(f"  lo  = {lo:+.9f}  (fp16 {hex_bits(lo, np.float16)}, sign bit used: {lo < 0})")
        print(f"  residual |x - (hi + lo)| = {abs(residual):.3e}")

    # --- 3. Figure 7 at small scale --------------------------------------
    print("\n=== emulation precision sweep (Figure 7, scaled) ===")
    fig7 = run_fig7(sizes=(128, 256, 512), samples=2)
    print(fig7.table())
    print(f"\nerror reduction vs cuBLAS-TC-Half : {fig7.avg_half_over_egemm:.0f}x (paper ~350x)")
    print(f"round vs truncate, split level    : {fig7.split_level_ratio:.2f}x (paper 2.33x)")


if __name__ == "__main__":
    main()
