"""Hardware-aware autotuning for a new GPU (§6: "to support different
GPUs, the user only needs to provide a small set of resource budgets").

End-to-end ``repro.tune`` workflow: define a hypothetical
next-generation GPU from a handful of budget numbers, let the analytic
solver pick its starting tiling, then run the search over the cycle
simulator per serving shape bucket — every winner verified bit-correct
against the reference emulation — persist the tuning database, and
report the tuned plans plus the predicted throughput curve.  The same
database file plugs straight into serving::

    python examples/autotune_new_gpu.py
    python -m repro serve --quick --tuning-db TUNE_example.json --devices t4,t4

Usage::

    python examples/autotune_new_gpu.py [--db TUNE_example.json]
"""

from __future__ import annotations

import sys

from repro import EgemmTcKernel, GpuSpec, TESLA_T4, autotune
from repro.experiments.common import format_table
from repro.gpu.registers import allocate, egemm_stage_usage
from repro.tune import TuningDatabase, quick_space, shape_bucket, spec_fingerprint
from repro.tune.cli import DEFAULT_SHAPES, run_tuning

# A hypothetical datacenter GPU: twice the SMs, bigger shared memory,
# HBM-class bandwidth.  Only budget-level numbers are needed.
NEW_GPU = GpuSpec(
    name="Hypothetica H100-lite",
    num_sms=80,
    tensor_cores_per_sm=8,
    fp32_cores_per_sm=64,
    clock_ghz=1.8,
    shared_mem_per_sm=128 * 1024,
    register_file_per_sm=256 * 1024,
    max_registers_per_thread=256,
    max_threads_per_sm=1024,
    max_blocks_per_sm=16,
    peak_half_tc_tflops=180.0,
    peak_fp32_tflops=30.0,
    dram_bw_gbps=1600.0,
    l2_bw_gbps=4000.0,
    l2_size=32 * 1024 * 1024,
)


def describe(spec: GpuSpec) -> None:
    """The §6 analytic step: one tiling from the budgets alone."""
    result = autotune(spec)
    cfg = result.best
    usage = egemm_stage_usage(cfg.wm, cfg.wn, cfg.wk, cfg.bm, cfg.bn, cfg.bk, cfg.threads_per_block)
    regs = allocate(usage, spec, policy="stage-reuse")
    rows = [
        ["(bm, bn, bk)", f"({cfg.bm}, {cfg.bn}, {cfg.bk})"],
        ["(wm, wn, wk)", f"({cfg.wm}, {cfg.wn}, {cfg.wk})"],
        ["Shared memory/block", f"{cfg.shared_mem_bytes // 1024} KB"],
        ["Active Blocks/SM", str(result.blocks_per_sm(spec))],
        ["Active Warps / Block", str(cfg.warps_per_block)],
        ["Registers/thread (stage reuse)", str(regs.registers_per_thread)],
        ["Compute/traffic objective (Eq. 4)", f"{result.objective:.1f} FLOP/B"],
        ["Design points evaluated", str(result.evaluated)],
    ]
    print(format_table(["Item", "Value"], rows, f"Design choice on {spec.name}"))

    kernel = EgemmTcKernel(tiling=cfg)
    print("\npredicted EGEMM-TC throughput (Eq. 9 TFLOPS):")
    for n in (1024, 4096, 8192, 16384):
        print(f"  {n:>6}^3: {kernel.tflops(n, n, n, spec):6.2f}")
    print()


def tune(spec: GpuSpec, db: TuningDatabase) -> None:
    """The search step: refine the analytic point per serving bucket."""
    print(f"tuning the serving shape mix on {spec.name}:")
    run_tuning(DEFAULT_SHAPES, spec, quick_space(), db)

    print("\ntuned vs static predicted throughput (serving buckets):")
    fp = spec_fingerprint(spec)
    static = EgemmTcKernel()
    for m, k, n in DEFAULT_SHAPES:
        entry = db.entries.get(f"{fp}/{shape_bucket((m, k, n))}/egemm-tc")
        if entry is None:
            continue
        tuned = entry.candidate.build_kernel()
        print(
            f"  {m:>4}x{k}x{n:<4}: "
            f"{static.tflops(m, n, k, spec):6.3f} -> "
            f"{tuned.tflops(m, n, k, spec):6.3f} TFLOPS "
            f"(verified bit-correct: {entry.verified_bit_correct})"
        )
    print()


def main(argv: list[str] | None = None) -> None:
    args = sys.argv[1:] if argv is None else argv
    db_path = args[args.index("--db") + 1] if "--db" in args else "TUNE_example.json"

    describe(TESLA_T4)  # reproduces the paper's Table 4
    describe(NEW_GPU)  # the same workflow on a GPU the paper never saw

    # Budget numbers in, tuned-and-verified serving plans out: both
    # devices' entries land in one database, keyed by spec fingerprint.
    db = TuningDatabase()
    tune(TESLA_T4, db)
    tune(NEW_GPU, db)
    db.save(db_path)
    print(f"-> {db_path}: {len(db)} entries "
          f"(serve with: python -m repro serve --tuning-db {db_path})")


if __name__ == "__main__":
    main()
