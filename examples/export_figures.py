"""Export every figure's data series as CSV (plot-ready artifact output).

Regenerates Figures 7–12 plus the ablation ladder and writes one CSV per
figure under ``figures/`` — the files a plotting script (or the paper's
camera-ready pipeline) would consume.  No plotting library is required
or used; the CSVs are the deliverable.

Usage::

    python examples/export_figures.py [output_dir]
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

from repro.experiments import (
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
)
from repro.experiments.ablations import run_overhead_ladder
from repro.gpu.spec import RTX6000, TESLA_T4


def _write(path: Path, header: list[str], rows: list[list[object]]) -> None:
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    print(f"  wrote {path} ({len(rows)} rows)")


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("figures")
    out.mkdir(parents=True, exist_ok=True)
    print(f"exporting figure data to {out}/")

    f7 = run_fig7(sizes=(128, 256, 512, 1024), samples=2)
    _write(
        out / "fig7_precision.csv",
        ["n", "egemm_tc_max_error", "markidis_max_error", "cublas_tc_half_max_error"],
        [[n, e, m, h] for n, e, m, h in zip(f7.sizes, f7.egemm.y, f7.markidis.y, f7.half.y)],
    )

    for spec, tag in ((TESLA_T4, "t4"), (RTX6000, "rtx6000")):
        f8 = run_fig8(spec)
        _write(
            out / f"fig8_{tag}.csv",
            ["n", "cublas_cuda_fp32_tflops", "cublas_tc_emulation_tflops", "egemm_tc_tflops"],
            [
                [n, f, e, g]
                for n, f, e, g in zip(
                    f8.sizes, f8.cublas_fp32.y, f8.cublas_tc_emulation.y, f8.egemm.y
                )
            ],
        )

    for family, tag in (("NxNx2N", "fig9a_k_skew"), ("4NxNxN", "fig9b_m_skew")):
        f9 = run_fig9(family)
        _write(
            out / f"{tag}.csv",
            ["m", "n", "k", "cublas_cuda_fp32", "cublas_tc_emulation", "egemm_tc"],
            [
                [m, n, k, f, e, g]
                for (m, n, k), f, e, g in zip(
                    f9.shapes, f9.cublas_fp32.y, f9.cublas_tc_emulation.y, f9.egemm.y
                )
            ],
        )

    f10 = run_fig10()
    _write(
        out / "fig10_opensource.csv",
        ["n", "sdk_cuda_fp32", "markidis", "egemm_tc"],
        [[n, s, m, e] for n, s, m, e in zip(f10.sizes, f10.sdk.y, f10.markidis.y, f10.egemm.y)],
    )

    f11 = run_fig11()
    _write(
        out / "fig11_latency_hiding.csv",
        ["n", "without_hiding_tflops", "with_hiding_tflops"],
        [[n, wo, w] for n, wo, w in zip(f11.sizes, f11.without_hiding.y, f11.with_hiding.y)],
    )

    for app in ("kmeans", "knn"):
        f12 = run_fig12(app)
        _write(
            out / f"fig12_{app}.csv",
            ["data_points", "speedup", "baseline_gemm_fraction"],
            [
                [n, s, f]
                for n, s, f in zip(f12.points, f12.speedup.y, f12.baseline_gemm_fraction)
            ],
        )

    ladder = run_overhead_ladder()
    _write(
        out / "ablation_overhead_ladder.csv",
        ["scheme", "core_calls", "effective_bits", "max_error_vs_exact", "tflops"],
        [[r.name, r.core_calls, r.effective_bits, r.max_error_vs_exact, r.tflops] for r in ladder],
    )
    print("done")


if __name__ == "__main__":
    main()
