"""Benchmark-suite configuration.

Each benchmark module regenerates one table or figure of the paper.  The
timed quantity is the experiment harness itself (workload generation +
simulated execution); the *reproduced values* — the numbers the paper
reports — are attached to ``benchmark.extra_info`` so a
``--benchmark-json`` dump carries the full paper-vs-measured record.

Environment knobs:

* ``EGEMM_BENCH_FULL=1`` — run the paper's full problem sizes (slower;
  the default sizes are scaled for CI, see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("EGEMM_BENCH_FULL", "0") == "1"


@pytest.fixture
def record(benchmark):
    """Helper to attach paper-vs-measured pairs to the benchmark record."""

    def _record(**kv):
        for key, value in kv.items():
            benchmark.extra_info[key] = value

    return _record
