"""Library micro-benchmarks: throughput of the reproduction's own hot
paths (the numerical core that every experiment runs through).

These track the *Python library's* performance (regressions in the
vectorized implementations), distinct from the simulated GPU TFLOPS the
figure benchmarks report.
"""

import numpy as np
import pytest

from repro.emulation.gemm import EmulatedGemm
from repro.emulation.schemes import EGEMM
from repro.profiling.workflow import PrecisionProfiler
from repro.splits.round import RoundSplit
from repro.splits.truncate import TruncateSplit
from repro.tensorcore.mma import InternalPrecision, mma


@pytest.fixture(scope="module")
def matrices():
    rng = np.random.default_rng(0)
    n = 512
    return (
        rng.uniform(-1, 1, (n, n)).astype(np.float32),
        rng.uniform(-1, 1, (n, n)).astype(np.float32),
    )


def test_round_split_throughput(benchmark, matrices, record):
    a, _ = matrices
    split = RoundSplit()
    pair = benchmark(split.split, a)
    record(elements=a.size, effective_bits=split.effective_mantissa_bits)
    assert pair.hi.shape == a.shape


def test_truncate_split_throughput(benchmark, matrices):
    a, _ = matrices
    pair = benchmark(TruncateSplit().split, a)
    assert pair.lo.shape == a.shape


def test_emulated_gemm_512(benchmark, matrices, record):
    a, b = matrices
    gemm = EmulatedGemm(scheme=EGEMM)
    d = benchmark(gemm, a, b)
    useful = 2 * a.shape[0] * a.shape[1] * b.shape[1]
    record(useful_flops=useful)
    assert d.shape == (512, 512)


def test_mma_primitive_tile(benchmark):
    rng = np.random.default_rng(1)
    a = rng.uniform(0, 1, (16, 16)).astype(np.float16)
    b = rng.uniform(0, 1, (16, 16)).astype(np.float16)
    out = benchmark(mma, a, b)
    assert out.shape == (16, 16)


def test_mma_float_probe_tile(benchmark):
    """The sequential-fp32 probing model is the profiling hot path."""
    rng = np.random.default_rng(2)
    a = rng.uniform(0, 1, (16, 16)).astype(np.float16)
    b = rng.uniform(0, 1, (16, 16)).astype(np.float16)
    out = benchmark(lambda: mma(a, b, precision=InternalPrecision.FLOAT))
    assert out.shape == (16, 16)


def test_profiler_100_trials(benchmark):
    profiler = PrecisionProfiler()
    result = benchmark.pedantic(profiler.run, kwargs={"trials": 100}, rounds=1, iterations=1)
    assert result.agreements
