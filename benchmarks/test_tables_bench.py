"""Benchmarks regenerating Tables 1-5 (experiments E1, E11, E12, E13, E15)."""

from repro.experiments.tables import (
    run_table1,
    run_table2,
    run_table2_measured,
    run_table3,
    run_table4,
    run_table5,
)


def test_table1_formats(benchmark, record):
    rows = benchmark(run_table1)
    by_name = {r["data_type"]: r["mantissa"] for r in rows}
    record(
        paper_half_mantissa=10,
        paper_extended_mantissa=21,
        measured_half_mantissa=by_name["half"],
        measured_extended_mantissa=by_name["extended"],
    )
    assert by_name == {"half": 10, "single": 23, "markidis": 20, "extended": 21}


def test_table2_analytic_traffic(benchmark, record):
    rows = benchmark(run_table2)
    by_type = {r["type"]: r for r in rows}
    record(
        alo_saving=by_type["Alo"]["saving"],
        c_saving=by_type["C"]["saving"],
        paper_claim="FRAG caching removes the bk/tk reload factor",
    )
    assert by_type["Alo"]["w/o FRAG caching"] > by_type["Alo"]["w/ FRAG caching"]


def test_table2_measured_traffic(benchmark, record):
    measured = benchmark(run_table2_measured, n=48)
    record(
        measured_saving=round(measured["measured_saving"], 2),
        frag_hit_rate=round(measured["frag_hit_rate"], 3),
    )
    assert measured["measured_saving"] > 2.0


def test_table3_budget(benchmark, record):
    rows = benchmark(run_table3)
    record(**{r["resource"].replace(" ", "_"): r["budget"] for r in rows})
    assert len(rows) == 4


def test_table4_solver(benchmark, record):
    rows = benchmark(run_table4)
    values = {r["item"]: r["value"] for r in rows}
    record(
        paper_block_tiling="(128, 128, 32)",
        measured_block_tiling=values["(bm, bn, bk)"],
        paper_warp_tiling="(64, 32, 8)",
        measured_warp_tiling=values["(wm, wn, wk)"],
    )
    assert values["(bm, bn, bk)"] == "(128, 128, 32)"
    assert values["(wm, wn, wk)"] == "(64, 32, 8)"


def test_table5_inventory(benchmark, record):
    rows = benchmark(run_table5)
    record(kernels=len(rows))
    assert len(rows) == 7
