"""Benchmark regenerating Figure 11: benefit of instruction scheduling.

Paper claim: the register-enhanced SASS-level latency hiding yields a
1.14x average speedup; the CUDA interface cannot reach the same
interleaving granularity.
"""

from conftest import full_scale

from repro.experiments.common import DEFAULT_SIZES, FULL_PAPER_SIZES
from repro.experiments.fig11 import run_fig11


def test_fig11_latency_hiding(benchmark, record):
    sizes = FULL_PAPER_SIZES if full_scale() else DEFAULT_SIZES
    result = benchmark.pedantic(run_fig11, kwargs={"sizes": sizes}, rounds=1, iterations=1)
    record(
        sizes=list(result.sizes),
        with_hiding_tflops=[round(v, 2) for v in result.with_hiding.y],
        without_hiding_tflops=[round(v, 2) for v in result.without_hiding.y],
        paper_avg_speedup="1.14x",
        measured_avg_speedup=f"{result.avg_speedup:.2f}x",
    )
    assert 1.08 < result.avg_speedup < 1.4
    assert all(w > wo for w, wo in zip(result.with_hiding.y, result.without_hiding.y))
