"""Benchmark regenerating Figure 10: open-source kernel comparison.

Paper claims: 11.18x average over SDK-CUDA-FP32; 3.0x over Markidis even
after manual tuning (the CUDA interface cannot express the SASS
optimizations).
"""

from conftest import full_scale

from repro.experiments.common import DEFAULT_SIZES, FULL_PAPER_SIZES
from repro.experiments.fig10 import run_fig10


def test_fig10_open_source(benchmark, record):
    sizes = FULL_PAPER_SIZES if full_scale() else DEFAULT_SIZES
    result = benchmark.pedantic(run_fig10, kwargs={"sizes": sizes}, rounds=1, iterations=1)
    record(
        sizes=list(result.sizes),
        sdk_tflops=[round(v, 2) for v in result.sdk.y],
        markidis_tflops=[round(v, 2) for v in result.markidis.y],
        egemm_tflops=[round(v, 2) for v in result.egemm.y],
        paper_avg_vs_sdk="11.18x",
        measured_avg_vs_sdk=f"{result.avg_speedup_vs_sdk:.2f}x",
        paper_avg_vs_markidis="3.0x",
        measured_avg_vs_markidis=f"{result.avg_speedup_vs_markidis:.2f}x",
    )
    assert 9 < result.avg_speedup_vs_sdk < 13
    assert 2.4 < result.avg_speedup_vs_markidis < 3.6
