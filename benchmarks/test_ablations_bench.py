"""Ablation benchmarks for the design choices DESIGN.md calls out
(beyond the paper's own figures)."""

from repro.experiments.ablations import (
    run_frag_caching_timed,
    run_model_validation,
    run_overhead_ladder,
    run_register_policy,
)
from repro.experiments.generality import run_tf32_generality


def test_a1_overhead_ladder(benchmark, record):
    """Precision vs throughput across emulation depths (1/4/9/16 ops)."""
    rungs = benchmark.pedantic(run_overhead_ladder, rounds=1, iterations=1)
    record(
        ladder={r.name: f"{r.max_error_vs_exact:.2e} @ {r.tflops:.2f} TFLOPS" for r in rungs},
        finding="4-call EGEMM-TC is the knee: 9 calls add no end-to-end precision, 16-op Dekker is slower than fp32",
    )
    by_name = {r.name: r for r in rungs}
    egemm = by_name["EGEMM-TC (4 calls)"]
    half = by_name["half (1 call)"]
    dekker = by_name["Dekker (16 scalar ops)"]
    assert egemm.max_error_vs_exact < half.max_error_vs_exact / 100
    assert dekker.tflops < 1.5  # slower than even the fp32 baseline
    assert egemm.tflops > 10 * dekker.tflops


def test_a2_frag_caching_timed(benchmark, record):
    """§4's FRAG caching as end-to-end TFLOPS (Table 2 counts bytes only)."""
    result = benchmark.pedantic(run_frag_caching_timed, rounds=1, iterations=1)
    record(
        with_caching=f"{result['with_caching']:.2f} TFLOPS",
        without_caching=f"{result['without_caching']:.2f} TFLOPS",
        speedup=f"{result['speedup']:.2f}x",
    )
    assert result["speedup"] > 1.2


def test_a3_register_policy(benchmark, record):
    """§5.2's stage-reuse allocation vs naive (spilling) allocation."""
    result = benchmark.pedantic(run_register_policy, rounds=1, iterations=1)
    record(
        stage_reuse=f"{result['stage_reuse']:.2f} TFLOPS",
        naive=f"{result['naive']:.2f} TFLOPS",
        speedup=f"{result['speedup']:.2f}x",
        paper_claim="register spilling leads to heavy slow down (§5.2)",
    )
    assert result["speedup"] > 1.2


def test_a4_model_validation(benchmark, record):
    """§6's 'no trial-and-error' claim: the analytic pick vs simulating
    every feasible tiling."""
    result = benchmark.pedantic(run_model_validation, rounds=1, iterations=1)
    record(
        solver_pick=result.solver_config,
        simulated_best=result.best_config,
        configs_timed=result.configs_timed,
        throughput_gap=f"{result.gap:.1%}",
    )
    assert result.gap < 0.10  # within 10% of the exhaustively-simulated best


def test_a5_tf32_generality(benchmark, record):
    """§3.1's extendability: the workflow on a second (TF32) core."""
    result = benchmark.pedantic(
        run_tf32_generality, kwargs={"trials": 200, "n": 128}, rounds=1, iterations=1
    )
    record(
        correct_hypothesis=result.correct_probe_name,
        full_fp32_rejected=result.full_fp32_rejected,
        emulation_error=f"{result.emulation_max_error:.2e}",
        plain_tf32_error=f"{result.plain_tf32_max_error:.2e}",
        error_reduction=f"{result.error_reduction:.0f}x",
    )
    assert result.correct_probe_name == "d_TF32"
    assert result.full_fp32_rejected
    assert result.error_reduction > 50
