"""Benchmarks for the extension studies: Ozaki int8, traffic-model
validation, and calibration sensitivity."""

from repro.experiments.ablations import run_ozaki_comparison
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.traffic_validation import validate_traffic_model


def test_a6_ozaki_ladder(benchmark, record):
    """The integer-pipe successor: precision per exact IMMA call."""
    result = benchmark.pedantic(run_ozaki_comparison, rounds=1, iterations=1)
    ladder = {r.slices: r.max_error_vs_exact for r in result["ladder"]}
    record(
        ozaki_errors={f"{s} slices ({s * s} calls)": f"{e:.2e}" for s, e in ladder.items()},
        egemm_4call_error=f"{result['egemm_error']:.2e}",
        finding="3 int8 slices land in the round-split class; 4 reach fp32-exact inputs",
    )
    assert ladder[2] > ladder[3] > ladder[4]
    assert ladder[4] < result["egemm_error"]


def test_traffic_model_validation(benchmark, record):
    """Analytic wave-reuse DRAM model vs a functional L2 simulation."""
    v = benchmark.pedantic(
        validate_traffic_model, kwargs={"n": 2048, "iterations": 6}, rounds=1, iterations=1
    )
    record(
        analytic_kb_per_block=f"{v.analytic_bytes_per_block / 1024:.0f}",
        measured_kb_per_block=f"{v.measured_bytes_per_block / 1024:.0f}",
        ratio=f"{v.ratio:.2f}",
        l2_hit_rate=f"{v.l2_hit_rate:.0%}",
    )
    assert 0.8 <= v.ratio <= 2.0
    assert v.l2_hit_rate > 0.7


def test_calibration_sensitivity(benchmark, record):
    """Headline ratios under +/-20% perturbation of every fitted constant."""
    points = benchmark.pedantic(run_sensitivity, kwargs={"n": 4096}, rounds=1, iterations=1)
    record(
        vs_fp32_range=f"{min(p.speedup_vs_fp32 for p in points):.2f}-{max(p.speedup_vs_fp32 for p in points):.2f}x",
        vs_emulation_range=f"{min(p.speedup_vs_emulation for p in points):.2f}-{max(p.speedup_vs_emulation for p in points):.2f}x",
        orderings_hold=all(p.ordering_holds for p in points),
    )
    assert all(p.ordering_holds for p in points)
