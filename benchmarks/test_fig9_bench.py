"""Benchmark regenerating Figure 9: skewed-matrix comparison.

Paper claims: on (N, N, 2N), cuBLAS-TC-Emulation slows sharply past
4096x4096x8192 while EGEMM-TC stays flat (1.33x / 2.89x average
speedups); on (4N, N, N) the baseline recovers but remains behind
(1.40x / 2.9x).
"""

from repro.experiments.fig9 import run_fig9


def test_fig9a_k_skew(benchmark, record):
    result = benchmark.pedantic(run_fig9, kwargs={"family": "NxNx2N"}, rounds=1, iterations=1)
    emu = dict(zip(result.bases, result.cublas_tc_emulation.y))
    record(
        shapes=[f"{m}x{n}x{k}" for (m, n, k) in result.shapes],
        egemm_tflops=[round(v, 2) for v in result.egemm.y],
        emulation_tflops=[round(v, 2) for v in result.cublas_tc_emulation.y],
        paper_avg_vs_emulation="1.33x",
        measured_avg_vs_emulation=f"{result.avg_speedup_vs_emulation:.2f}x",
        paper_avg_vs_fp32="2.89x",
        measured_avg_vs_fp32=f"{result.avg_speedup_vs_fp32:.2f}x",
        paper_cliff="slowdown beyond 4096x4096x8192",
        measured_cliff=f"{emu[2048]:.2f} -> {emu[4096]:.2f} TFLOPS across the threshold",
    )
    assert emu[4096] < 0.8 * emu[2048]
    assert result.avg_speedup_vs_emulation > 1.2
    assert result.avg_speedup_vs_fp32 > 2.2


def test_fig9b_m_skew(benchmark, record):
    result = benchmark.pedantic(run_fig9, kwargs={"family": "4NxNxN"}, rounds=1, iterations=1)
    record(
        shapes=[f"{m}x{n}x{k}" for (m, n, k) in result.shapes],
        egemm_tflops=[round(v, 2) for v in result.egemm.y],
        paper_avg_vs_emulation="1.40x",
        measured_avg_vs_emulation=f"{result.avg_speedup_vs_emulation:.2f}x",
        paper_avg_vs_fp32="2.9x",
        measured_avg_vs_fp32=f"{result.avg_speedup_vs_fp32:.2f}x",
    )
    assert result.avg_speedup_vs_emulation > 1.0
    assert result.avg_speedup_vs_fp32 > 2.2
