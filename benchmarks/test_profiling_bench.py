"""Benchmark regenerating E2: the Tensor Core precision profiling
(Figures 2-3, Appendix A.3 'Profiling').

Paper claim: over 10,000 randomized trials, d_TC is bit-wise identical to
d_FLOAT up to 21 mantissa bits, while the half-precision hypothesis is
rejected immediately.
"""

from conftest import full_scale

from repro.experiments.profiling_exp import PAPER_TRIALS, run_profiling


def test_precision_profiling(benchmark, record):
    trials = PAPER_TRIALS if full_scale() else 1500
    exp = benchmark.pedantic(run_profiling, kwargs={"trials": trials}, rounds=1, iterations=1)
    record(
        trials=trials,
        paper_float_min_bits=21,
        measured_float_min_bits=exp.float_min_bits,
        measured_half_min_bits=exp.half_min_bits,
        verdict=exp.result.verdict()[:80],
    )
    assert exp.supports_extended_precision
    assert exp.float_min_bits >= 21
    assert exp.half_min_bits < 21
