"""Benchmark regenerating Figure 12: scientific-computing acceleration.

Paper claims: kMeans speeds up 1.3x (2048 points) to 1.82x (16384);
kNN shows the same trend up to ~2.4x; speedups grow with data size both
because the GEMM speedup grows and because GEMM dominates more.
"""

from repro.experiments.fig12 import DEFAULT_POINTS, run_fig12


def test_fig12a_kmeans(benchmark, record):
    result = benchmark.pedantic(run_fig12, kwargs={"app": "kmeans"}, rounds=1, iterations=1)
    record(
        points=list(result.points),
        speedups=[round(v, 2) for v in result.speedup.y],
        gemm_fraction=[round(v, 2) for v in result.baseline_gemm_fraction],
        paper_range="1.3x @2048 -> 1.82x @16384",
        measured_range=f"{result.speedup.y[0]:.2f}x -> {result.speedup.y[-1]:.2f}x",
    )
    assert result.speedup.y == sorted(result.speedup.y)
    assert 1.2 < result.speedup.y[0] < 1.6
    assert 1.7 < result.max_speedup < 2.1


def test_fig12b_knn(benchmark, record):
    result = benchmark.pedantic(run_fig12, kwargs={"app": "knn"}, rounds=1, iterations=1)
    record(
        points=list(result.points),
        speedups=[round(v, 2) for v in result.speedup.y],
        paper_range="up to ~2.4x, avg 1.7x",
        measured_range=f"{result.speedup.y[0]:.2f}x -> {result.speedup.y[-1]:.2f}x",
    )
    assert result.speedup.y == sorted(result.speedup.y)
    assert 2.0 < result.max_speedup < 2.7
