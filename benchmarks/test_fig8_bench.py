"""Benchmark regenerating Figure 8: vendor-kernel comparison on square
matrices, Tesla T4 (8a) and RTX 6000 (8b).

Paper claims: 3.13x average speedup over cuBLAS-CUDA-FP32, 1.35x over
cuBLAS-TC-Emulation, larger speedups at larger sizes, same picture on
both GPUs.
"""

from conftest import full_scale

from repro.experiments.common import DEFAULT_SIZES, FULL_PAPER_SIZES
from repro.experiments.fig8 import run_fig8
from repro.gpu.spec import RTX6000, TESLA_T4


def _sizes():
    return FULL_PAPER_SIZES if full_scale() else DEFAULT_SIZES


def test_fig8a_t4(benchmark, record):
    result = benchmark.pedantic(
        run_fig8, kwargs={"spec": TESLA_T4, "sizes": _sizes()}, rounds=1, iterations=1
    )
    record(
        sizes=list(result.sizes),
        egemm_tflops=[round(v, 2) for v in result.egemm.y],
        cublas_fp32_tflops=[round(v, 2) for v in result.cublas_fp32.y],
        cublas_tc_emulation_tflops=[round(v, 2) for v in result.cublas_tc_emulation.y],
        paper_avg_vs_fp32="3.13x",
        measured_avg_vs_fp32=f"{result.avg_speedup_vs_fp32:.2f}x",
        paper_avg_vs_emulation="1.35x",
        measured_avg_vs_emulation=f"{result.avg_speedup_vs_emulation:.2f}x",
    )
    assert 2.5 < result.avg_speedup_vs_fp32 < 3.7
    assert 1.2 < result.avg_speedup_vs_emulation < 1.6


def test_fig8b_rtx6000(benchmark, record):
    result = benchmark.pedantic(
        run_fig8, kwargs={"spec": RTX6000, "sizes": _sizes()}, rounds=1, iterations=1
    )
    record(
        egemm_tflops=[round(v, 2) for v in result.egemm.y],
        measured_avg_vs_fp32=f"{result.avg_speedup_vs_fp32:.2f}x",
        paper_observation="similar benefits as on Tesla T4",
    )
    assert result.avg_speedup_vs_fp32 > 2.0
    # absolute throughput scales with the bigger GPU
    t4 = run_fig8(TESLA_T4, _sizes())
    assert result.egemm.y[-1] > t4.egemm.y[-1]
