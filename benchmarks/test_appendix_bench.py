"""Benchmarks regenerating the Appendix A.3 artifact programs:
``precision_test`` and the three performance anchors."""

from conftest import full_scale

from repro.experiments.appendix import run_performance_anchors, run_precision_test


def test_precision_test(benchmark, record):
    n = 1024 if full_scale() else 256
    result = benchmark.pedantic(run_precision_test, kwargs={"n": n}, rounds=1, iterations=1)
    record(
        n=n,
        max_emulation_error=f"{result.max_emulation_error:.8f}",
        max_half_cublas_error=f"{result.max_half_cublas_error:.8f}",
        ratio=f"{result.ratio:.6f}",
        paper_example="0.00025177 / 0.13489914 -> ratio 0.00186636 at n=1024",
    )
    assert result.ratio < 0.01  # "error reduced by more than 100x"


def test_performance_anchors(benchmark, record):
    anchors = benchmark.pedantic(run_performance_anchors, rounds=1, iterations=1)
    record(
        paper="EGEMM ~12, cublas_CUDA_FP32 ~4, SDK_CUDA_FP32 ~1 TFLOPS",
        measured=(
            f"EGEMM {anchors.egemm:.1f}, cublas {anchors.cublas_fp32:.1f}, "
            f"SDK {anchors.sdk_fp32:.1f} TFLOPS"
        ),
    )
    assert 10.5 < anchors.egemm < 13.5
    assert 3.3 < anchors.cublas_fp32 < 4.7
    assert 0.8 < anchors.sdk_fp32 < 1.2
