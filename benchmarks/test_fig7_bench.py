"""Benchmark regenerating Figure 7: emulation precision vs matrix size.

Paper claims: EGEMM-TC reduces max error ~350x on average vs
cuBLAS-TC-Half (82x at 8192), and 2.33x vs Markidis thanks to the
round-split.
"""

from conftest import full_scale

from repro.experiments.fig7 import run_fig7


def test_fig7_precision_sweep(benchmark, record):
    sizes = (128, 256, 512, 1024, 2048) if full_scale() else (128, 256, 512)
    samples = 3 if full_scale() else 2
    result = benchmark.pedantic(
        run_fig7, kwargs={"sizes": sizes, "samples": samples}, rounds=1, iterations=1
    )
    record(
        sizes=list(sizes),
        egemm_max_error=[f"{v:.3e}" for v in result.egemm.y],
        markidis_max_error=[f"{v:.3e}" for v in result.markidis.y],
        half_max_error=[f"{v:.3e}" for v in result.half.y],
        paper_avg_reduction_vs_half="~350x",
        measured_avg_reduction_vs_half=f"{result.avg_half_over_egemm:.0f}x",
        paper_reduction_vs_markidis="2.33x",
        measured_reduction_vs_markidis_end_to_end=f"{result.avg_markidis_over_egemm:.2f}x",
        measured_reduction_vs_markidis_split_level=f"{result.split_level_ratio:.2f}x",
    )
    assert result.avg_half_over_egemm > 100
    assert result.avg_markidis_over_egemm >= 0.95  # diluted by common-mode error
    assert result.split_level_ratio > 1.8  # the pure round-vs-truncate effect
    # error grows slowly with N (the §7.2 accumulation argument)
    assert result.egemm.y[-1] > result.egemm.y[0]
